"""Continuous-batching scheduler: determinism, admission control,
tenant quotas, priority aging, and bitwise-exact completions."""

import numpy as np
import pytest

from repro.models import GPTModel, tiny_gpt
from repro.models.generate import generate
from repro.serving import (
    EngineConfig,
    Request,
    Scheduler,
    SchedulerConfig,
    ServingEngine,
)
from repro.telemetry.metrics import MetricsRegistry

from .helpers import rng


def _model():
    return GPTModel(
        tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32),
        seed=0,
    )


def _mix(n, *, tenants=2, seed=0):
    r = rng(seed)
    return [
        Request(
            rid=f"r{i}",
            prompt=r.integers(0, 32, size=int(r.integers(2, 9))),
            max_new_tokens=int(r.integers(1, 5)),
            tenant=f"t{i % tenants}",
            priority=int(r.integers(0, 3)),
            arrival_tick=int(i // 3),
            seed=i,
        )
        for i in range(n)
    ]


def _run(model, requests, scheduler_config=None, registry=None):
    engine = ServingEngine(model, config=EngineConfig(prefill_chunk=4))
    scheduler = Scheduler(engine, config=scheduler_config, registry=registry)
    pending = sorted(requests, key=lambda r: (r.arrival_tick, r.rid))
    i = 0
    while i < len(pending) or scheduler.outstanding:
        while i < len(pending) and pending[i].arrival_tick <= scheduler.tick_index:
            scheduler.submit(pending[i])
            i += 1
        scheduler.tick()
    return scheduler


class TestSchedulerDeterminism:
    def test_same_mix_same_schedule(self):
        """Same seed + same mix => identical event log and identical
        outputs, tick for tick."""
        model = _model()
        cfg = SchedulerConfig(max_live=3, tenant_quota=2)
        a = _run(model, _mix(12, seed=3), cfg)
        b = _run(model, _mix(12, seed=3), cfg)
        assert a.log == b.log
        assert sorted(a.completed) == sorted(b.completed)
        for rid in a.completed:
            np.testing.assert_array_equal(
                a.completed[rid].output(), b.completed[rid].output()
            )

    def test_different_policy_different_schedule(self):
        model = _model()
        a = _run(model, _mix(12, seed=3), SchedulerConfig(max_live=1))
        b = _run(model, _mix(12, seed=3), SchedulerConfig(max_live=6))
        assert a.log != b.log  # policy shapes the schedule...
        for rid in a.completed:  # ...but never the tokens
            np.testing.assert_array_equal(
                a.completed[rid].output(), b.completed[rid].output()
            )


class TestSchedulerPolicy:
    def test_completions_match_generate(self):
        model = _model()
        requests = _mix(10, seed=4)
        scheduler = _run(model, requests, SchedulerConfig(max_live=4))
        assert len(scheduler.completed) == len(requests)
        for request in requests:
            np.testing.assert_array_equal(
                scheduler.completed[request.rid].output(),
                generate(
                    model, request.prompt,
                    max_new_tokens=request.max_new_tokens, seed=request.seed,
                ),
            )

    def test_max_live_respected(self):
        model = _model()
        engine = ServingEngine(model, config=EngineConfig(prefill_chunk=4))
        scheduler = Scheduler(engine, config=SchedulerConfig(max_live=2))
        for request in _mix(8, seed=5):
            scheduler.submit(request)
        live_high_water = 0
        while scheduler.outstanding:
            scheduler.tick()
            live_high_water = max(live_high_water, len(scheduler._live))
        assert live_high_water <= 2

    def test_tenant_quota_respected(self):
        """With a quota of 1, a tenant never holds two live slots even
        while the other tenant's queue drains."""
        model = _model()
        engine = ServingEngine(model, config=EngineConfig(prefill_chunk=4))
        scheduler = Scheduler(
            engine, config=SchedulerConfig(max_live=4, tenant_quota=1)
        )
        for request in _mix(8, tenants=2, seed=6):
            scheduler.submit(request)
        while scheduler.outstanding:
            scheduler.tick()
            counts = {}
            for state, _ in scheduler._live.values():
                tenant = state.request.tenant
                counts[tenant] = counts.get(tenant, 0) + 1
            assert all(n <= 1 for n in counts.values())
        assert len(scheduler.completed) == 8

    def test_priority_admitted_first(self):
        """Among same-tick arrivals, higher priority is admitted first."""
        model = _model()
        engine = ServingEngine(model)
        scheduler = Scheduler(engine, config=SchedulerConfig(max_live=1))
        low = Request(rid="low", prompt=np.array([1, 2]), max_new_tokens=1,
                      priority=0)
        high = Request(rid="high", prompt=np.array([3, 4]), max_new_tokens=1,
                       priority=5)
        scheduler.submit(low)
        scheduler.submit(high)
        scheduler.tick()
        admits = [rid for _, ev, rid in scheduler.log if ev == "admit"]
        assert admits == ["high"]

    def test_priority_aging_prevents_starvation(self):
        """A low-priority request eventually outranks a steady stream of
        fresh high-priority arrivals."""
        cfg = SchedulerConfig(aging=1.0)
        scheduler = Scheduler(ServingEngine(_model()), config=cfg)
        old = Request(rid="old", prompt=np.array([1]), max_new_tokens=1,
                      priority=0, arrival_tick=0)
        fresh = Request(rid="fresh", prompt=np.array([2]), max_new_tokens=1,
                        priority=2, arrival_tick=5)
        scheduler.tick_index = 5  # old has waited 5 ticks
        assert scheduler._effective_priority(old) > scheduler._effective_priority(fresh)

    def test_admission_control_rejects_when_queue_full(self):
        model = _model()
        engine = ServingEngine(model)
        scheduler = Scheduler(
            engine, config=SchedulerConfig(max_live=1, max_queue=2)
        )
        requests = _mix(5, seed=7)
        accepted = [scheduler.submit(r) for r in requests]
        assert accepted == [True, True, False, False, False]
        assert len(scheduler.rejected) == 3
        while scheduler.outstanding:
            scheduler.tick()
        assert len(scheduler.completed) == 2

    def test_unbounded_queue_never_drops(self):
        scheduler = _run(_model(), _mix(20, seed=8), SchedulerConfig(max_live=2))
        assert scheduler.rejected == []
        assert len(scheduler.completed) == 20


class TestSchedulerTelemetry:
    def test_instruments_recorded(self):
        registry = MetricsRegistry()
        model = _model()
        engine = ServingEngine(model, registry=registry)
        scheduler = Scheduler(
            engine, config=SchedulerConfig(max_live=2), registry=registry
        )
        for request in _mix(6, seed=9):
            scheduler.submit(request)
        while scheduler.outstanding:
            scheduler.tick()
        snap = registry.snapshot()
        assert snap["serving_requests_submitted"] == 6
        assert snap["serving_requests_completed"] == 6
        assert snap["serving_requests_rejected"] == 0
        assert snap["serving_ttft_ticks"]["count"] == 6
        assert snap["serving_latency_ticks"]["count"] == 6
        assert snap["serving_latency_ticks"]["p99"] >= snap["serving_ttft_ticks"]["p50"]
        assert snap["serving_decode_tokens"] > 0
        assert snap["serving_prefill_tokens"] > 0
        assert snap["serving_queue_depth"] == 0
        assert snap["serving_live_requests"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_live=0)
        with pytest.raises(ValueError):
            SchedulerConfig(tenant_quota=0)
        with pytest.raises(ValueError):
            SchedulerConfig(prefill_chunks_per_tick=0)
        with pytest.raises(ValueError):
            SchedulerConfig(aging=-0.1)
