"""End-to-end FPDT model equivalence: loss and every parameter gradient
must match the single-device reference model, including the shuffled
data layout, chunked loss head and ignore-index handling."""

import numpy as np
import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.models.loss import IGNORE_INDEX
from repro.runtime import VirtualCluster

from .helpers import rng

WORLD = 4


def _data(cfg, seed=0, b=1, s=32, pad=False):
    g = rng(seed)
    tokens = g.integers(0, cfg.vocab_size, size=(b, s))
    labels = g.integers(0, cfg.vocab_size, size=(b, s))
    if pad:
        labels[:, -5:] = IGNORE_INDEX
    return tokens, labels


def _reference_step(cfg, tokens, labels, seed=0, loss_chunks=1):
    model = GPTModel(cfg, seed=seed, loss_chunks=loss_chunks)
    loss = model.forward_loss(tokens, labels)
    model.backward_loss()
    return model, loss, model.all_grads()


@pytest.mark.parametrize(
    "cfg_factory",
    [
        pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4, num_layers=2), id="gpt"),
        pytest.param(
            lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2),
            id="llama-gqa",
        ),
    ],
)
class TestFPDTModelEquivalence:
    @pytest.mark.parametrize("num_chunks", [1, 2, 4])
    def test_loss_and_grads_match_reference(self, cfg_factory, num_chunks):
        cfg = cfg_factory()
        tokens, labels = _data(cfg)
        ref_model, ref_loss, ref_grads = _reference_step(cfg, tokens, labels)
        model = GPTModel(cfg, seed=0)
        runner = FPDTModelRunner(
            model, VirtualCluster(WORLD), num_chunks=num_chunks, loss_chunks=3
        )
        loss, grads = runner.forward_backward(tokens, labels)
        assert loss == pytest.approx(ref_loss, rel=1e-10)
        assert set(grads) == set(ref_grads)
        for name in ref_grads:
            np.testing.assert_allclose(
                grads[name], ref_grads[name], rtol=1e-6, atol=1e-9, err_msg=name
            )

    def test_ignore_index_handled(self, cfg_factory):
        cfg = cfg_factory()
        tokens, labels = _data(cfg, seed=1, pad=True)
        _, ref_loss, ref_grads = _reference_step(cfg, tokens, labels, seed=1)
        model = GPTModel(cfg, seed=1)
        runner = FPDTModelRunner(model, VirtualCluster(WORLD), num_chunks=2)
        loss, grads = runner.forward_backward(tokens, labels)
        assert loss == pytest.approx(ref_loss, rel=1e-10)
        np.testing.assert_allclose(
            grads["embed.table"], ref_grads["embed.table"], rtol=1e-6, atol=1e-9
        )

    def test_offload_flag_does_not_change_results(self, cfg_factory):
        cfg = cfg_factory()
        tokens, labels = _data(cfg, seed=2)
        m1 = GPTModel(cfg, seed=3)
        m2 = GPTModel(cfg, seed=3)
        r1 = FPDTModelRunner(m1, VirtualCluster(WORLD), num_chunks=2, offload=True)
        r2 = FPDTModelRunner(m2, VirtualCluster(WORLD), num_chunks=2, offload=False)
        l1, g1 = r1.forward_backward(tokens, labels)
        l2, g2 = r2.forward_backward(tokens, labels)
        assert l1 == l2
        for name in g1:
            np.testing.assert_array_equal(g1[name], g2[name])

    def test_forward_hidden_matches_reference(self, cfg_factory):
        cfg = cfg_factory()
        tokens, _ = _data(cfg, seed=4)
        ref_model = GPTModel(cfg, seed=5)
        ref_hidden = ref_model.forward_hidden(tokens)
        model = GPTModel(cfg, seed=5)
        runner = FPDTModelRunner(model, VirtualCluster(WORLD), num_chunks=4)
        hidden = runner.forward_hidden(tokens)
        np.testing.assert_allclose(hidden, ref_hidden, rtol=1e-7, atol=1e-9)


class TestFPDTModelValidation:
    def test_mismatched_token_label_shapes(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        runner = FPDTModelRunner(GPTModel(cfg), VirtualCluster(2), num_chunks=2)
        with pytest.raises(Exception):
            runner.forward_backward(np.zeros((1, 16), int), np.zeros((1, 8), int))

    def test_default_loss_chunks_uses_paper_rule(self):
        cfg = tiny_gpt(hidden_size=64, num_heads=4, vocab_size=512)
        runner = FPDTModelRunner(GPTModel(cfg), VirtualCluster(2), num_chunks=2)
        assert runner.loss_chunks == 16  # 512/64*2

    def test_shared_params_visible_to_runner(self):
        """The runner reads the model's live parameter arrays, so an
        optimizer step on the model changes the runner's next loss."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model = GPTModel(cfg, seed=0)
        runner = FPDTModelRunner(model, VirtualCluster(2), num_chunks=2)
        tokens, labels = _data(cfg, seed=6, s=16)
        l1, grads = runner.forward_backward(tokens, labels)
        # crude SGD step
        for name, g in grads.items():
            model.set_param(name, dict(model.all_params())[name] - 0.5 * g)
        l2, _ = runner.forward_backward(tokens, labels)
        assert l2 != l1
