"""Process groups, device meshes, and group-scoped collectives.

Three contracts under test:

1. **Construction** — :class:`ProcessGroup` / :class:`DeviceMesh` reject
   malformed rank sets and shapes loudly; the mesh's per-axis groups are
   the row-major sub-communicators USP builds on.
2. **Scoping** — a group-scoped collective moves data among exactly its
   members, records bytes with the *group* size in the payload formula,
   namespaces its trace labels, and confines fault victims to the group.
3. **World default** — ``group=None`` resolves to the cached world group
   and is *bitwise* identical to the pre-group behavior: same trace
   events (labels, bytes, ids), same pool peaks, same fault draws.
"""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.faults import FaultInjector, FaultPlan
from repro.parallel import DeviceMesh, ProcessGroup, world_group
from repro.runtime import VirtualCluster
from repro.runtime.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    broadcast,
    reduce_scatter,
    ring_shift,
)

from .helpers import rng


def _tensors(cluster, ranks, shape=(2, 4), tag="x"):
    g = rng(0)
    return [
        cluster.devices[r].from_numpy(g.normal(size=shape), DType.FP32, tag)
        for r in ranks
    ]


class TestProcessGroup:
    def test_ordered_membership(self):
        cluster = VirtualCluster(4)
        grp = ProcessGroup(cluster, [3, 1], name="pair")
        assert grp.size == 2
        assert grp.ranks == (3, 1)
        assert grp.device(0).rank == 3
        assert grp.index(1) == 1
        assert 3 in grp and 0 not in grp
        assert not grp.is_world

    def test_validation(self):
        cluster = VirtualCluster(2)
        with pytest.raises(ValueError, match="at least one rank"):
            ProcessGroup(cluster, [])
        with pytest.raises(ValueError, match="duplicate"):
            ProcessGroup(cluster, [0, 0])
        with pytest.raises(ValueError, match="out of range"):
            ProcessGroup(cluster, [0, 2])
        with pytest.raises(ValueError, match="not in group"):
            ProcessGroup(cluster, [1], name="solo").index(0)

    def test_tag_namespacing(self):
        cluster = VirtualCluster(4)
        named = ProcessGroup(cluster, [0, 1], name="usp.ulysses0")
        assert named.tag("all2all") == "usp.ulysses0:all2all"
        # The world group's empty name is the identity: pre-group trace
        # labels must not move.
        assert world_group(cluster).tag("all2all") == "all2all"

    def test_world_group_is_cached_per_cluster(self):
        a, b = VirtualCluster(2), VirtualCluster(2)
        assert world_group(a) is world_group(a)
        assert world_group(a) is not world_group(b)
        assert world_group(a).is_world
        assert world_group(a).ranks == (0, 1)

    def test_cross_cluster_group_rejected(self):
        a, b = VirtualCluster(2), VirtualCluster(2)
        grp = ProcessGroup(a, [0, 1], name="other")
        with pytest.raises(ValueError, match="different cluster"):
            all_reduce(b, _tensors(b, range(2)), group=grp)


class TestDeviceMesh:
    def test_row_major_layout(self):
        cluster = VirtualCluster(8)
        mesh = DeviceMesh(cluster, (2, 4), axis_names=("ring", "ulysses"))
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(5) == (1, 1)
        assert mesh.axis_size("ulysses") == 4
        rows = mesh.groups("ulysses")
        cols = mesh.groups("ring")
        assert [g.ranks for g in rows] == [(0, 1, 2, 3), (4, 5, 6, 7)]
        assert [g.ranks for g in cols] == [(0, 4), (1, 5), (2, 6), (3, 7)]
        assert mesh.group_of("ring", 6).ranks == (2, 6)
        # Cached: repeated calls hand back the same group objects.
        assert mesh.groups("ulysses")[0] is rows[0]

    def test_group_names_carry_mesh_and_axis(self):
        cluster = VirtualCluster(4)
        mesh = DeviceMesh(cluster, (2, 2), axis_names=("a", "b"), name="m")
        assert [g.name for g in mesh.groups("b")] == ["m.b0", "m.b1"]

    def test_validation(self):
        cluster = VirtualCluster(4)
        with pytest.raises(ValueError, match="covers"):
            DeviceMesh(cluster, (2, 3))
        with pytest.raises(ValueError, match="positive"):
            DeviceMesh(cluster, (4, 0))
        with pytest.raises(ValueError, match="axis names"):
            DeviceMesh(cluster, (2, 2), axis_names=("only",))
        with pytest.raises(ValueError, match="duplicate axis"):
            DeviceMesh(cluster, (2, 2), axis_names=("x", "x"))
        mesh = DeviceMesh(cluster, (2, 2))
        with pytest.raises(ValueError, match="unknown mesh axis"):
            mesh.groups("nope")
        with pytest.raises(ValueError, match="out of range"):
            mesh.axis_index(2)


class TestGroupScopedCollectives:
    def test_sub_group_exchanges_among_members_only(self):
        """An all-to-all on ranks (1, 3) moves (1, 3)'s data and touches
        no other pool."""
        cluster = VirtualCluster(4)
        grp = ProcessGroup(cluster, [1, 3], name="odd")
        full = rng(1).normal(size=(1, 4, 2, 3))
        tensors = [
            cluster.devices[r].from_numpy(full[:, 2 * i : 2 * (i + 1)], DType.FP32, "x")
            for i, r in enumerate(grp.ranks)
        ]
        outs = all_to_all(cluster, tensors, split_axis=2, concat_axis=1, group=grp)
        for pos, out in enumerate(outs):
            np.testing.assert_array_equal(out.data, full[:, :, pos : pos + 1, :])
        assert cluster.devices[0].hbm.peak == 0
        assert cluster.devices[2].hbm.peak == 0

    def test_trace_label_and_bytes_use_group(self):
        """Named groups namespace the label; wire bytes use the *group*
        size (P-1)/P fraction, not the world's."""
        cluster = VirtualCluster(4)
        grp = ProcessGroup(cluster, [0, 1], name="row0")
        tensors = _tensors(cluster, grp.ranks, shape=(4, 4))
        per_rank = tensors[0].nbytes
        all_gather(cluster, tensors, axis=0, group=grp)
        (event,) = cluster.trace.filter(kind="collective")
        assert event.label == "all_gather:row0:allgather"
        assert event.nbytes == per_rank * 2 // 2  # M * P * (P-1)/P with P=2

    def test_each_collective_is_group_scoped(self):
        """Every collective accepts ``group=`` and lands its outputs on
        the group's devices in group order."""
        cluster = VirtualCluster(4)
        grp = ProcessGroup(cluster, [2, 0], name="rev")
        ops = [
            lambda t: all_to_all(cluster, t, split_axis=0, concat_axis=1, group=grp),
            lambda t: all_gather(cluster, t, axis=0, group=grp),
            lambda t: reduce_scatter(cluster, t, axis=0, group=grp),
            lambda t: all_reduce(cluster, t, group=grp),
            lambda t: ring_shift(cluster, t, shift=1, group=grp),
        ]
        for op in ops:
            outs = op(_tensors(cluster, grp.ranks))
            assert [o.pool for o in outs] == [
                cluster.devices[2].hbm, cluster.devices[0].hbm,
            ]
            for o in outs:
                o.free()
        cluster.check_no_leaks()

    def test_broadcast_root_is_a_group_rank(self):
        cluster = VirtualCluster(4)
        grp = ProcessGroup(cluster, [3, 1], name="pair")
        src = cluster.devices[1].from_numpy(np.arange(4.0), DType.FP32, "w")
        outs = broadcast(cluster, src, root=1, group=grp)  # group rank 1 == rank 3's peer
        assert outs[1] is src
        assert outs[0].pool is cluster.devices[3].hbm
        np.testing.assert_array_equal(outs[0].data, np.arange(4.0))

    def test_ring_shift_rotates_in_group_order(self):
        """Rotation follows group positions, not global ranks — a
        stride-U mesh column rotates correctly."""
        cluster = VirtualCluster(4)
        col = ProcessGroup(cluster, [1, 3], name="col1")
        tensors = [
            cluster.devices[r].from_numpy(np.full(2, float(r)), DType.FP32, "kv")
            for r in col.ranks
        ]
        outs = ring_shift(cluster, tensors, shift=1, group=col)
        np.testing.assert_array_equal(outs[0].data, np.full(2, 3.0))
        np.testing.assert_array_equal(outs[1].data, np.full(2, 1.0))

    def test_wrong_member_count_raises(self):
        cluster = VirtualCluster(4)
        grp = ProcessGroup(cluster, [0, 1, 2], name="trio")
        with pytest.raises(Exception, match="expected 3"):
            all_reduce(cluster, _tensors(cluster, [0, 1]), group=grp)

    def test_sub_group_never_routes_hierarchically(self):
        """Multi-node topology reroutes only *world* exchanges; a mesh
        row is assumed node-local and stays flat."""
        from repro.hardware import make_cluster, paper_node_a100_80g

        spec = make_cluster(paper_node_a100_80g(), 8)  # 2 nodes
        cluster = VirtualCluster(8, spec=spec)
        grp = ProcessGroup(cluster, [0, 1, 2, 3], name="row0")
        all_to_all(
            cluster, _tensors(cluster, grp.ranks, shape=(1, 4, 4, 2)),
            split_axis=2, concat_axis=1, group=grp,
        )
        labels = [e.label for e in cluster.trace.filter(kind="collective")]
        assert labels == ["all_to_all:row0:all2all"]


class TestGroupFaultScoping:
    def test_disjoint_group_fault_isolation(self):
        """Straggler/spike victims drawn for a group land on *member*
        ranks; the other group's devices see neither compute nor pool
        traffic from the faults."""
        cluster = VirtualCluster(4)
        plan = FaultPlan(seed=0, straggler_rate=1.0, hbm_spike_rate=1.0,
                         hbm_spike_bytes=1 << 16)
        FaultInjector(plan).attach(cluster)
        a = ProcessGroup(cluster, [0, 1], name="a")
        b_ranks = (2, 3)
        for _ in range(4):
            outs = all_reduce(cluster, _tensors(cluster, a.ranks), group=a)
            for t in outs:
                t.free()
        faults = cluster.trace.filter(kind="fault")
        assert faults, "the plan never fired"
        assert all(e.rank in a.ranks for e in faults)
        for r in b_ranks:
            dev = cluster.devices[r]
            assert dev.hbm.peak == 0
            assert not [e for e in cluster.trace.events
                        if e.kind == "compute" and e.rank == r]

    def test_world_group_draws_match_ungrouped(self):
        """The world group's victim mapping is the identity: a seeded
        plan picks the same ranks whether or not ``group=`` is passed."""
        def run(pass_group):
            cluster = VirtualCluster(4)
            plan = FaultPlan(seed=7, straggler_rate=0.8, hbm_spike_rate=0.5,
                             collective_rate=0.3)
            FaultInjector(plan).attach(cluster)
            grp = world_group(cluster) if pass_group else None
            for _ in range(6):
                outs = all_reduce(cluster, _tensors(cluster, range(4)), group=grp)
                for t in outs:
                    t.free()
            return [
                (e.event_id, e.kind, e.label, e.rank, e.nbytes)
                for e in cluster.trace.events
                if e.kind in ("fault", "retry")
            ]

        assert run(True) == run(False)


class TestWorldGroupBitwiseDefault:
    """``group=None`` vs an explicit world group: byte-identical runs."""

    def _signature(self, cluster):
        events = [
            (e.event_id, e.kind, e.label, e.rank, e.stream, e.nbytes, e.flops)
            for e in cluster.trace.events
        ]
        peaks = [d.hbm.peak for d in cluster.devices]
        return events, peaks

    def test_explicit_world_group_is_bitwise_identity(self):
        def run(pass_group):
            cluster = VirtualCluster(4)
            grp = world_group(cluster) if pass_group else None
            t = _tensors(cluster, range(4), shape=(1, 4, 4, 2))
            t = all_to_all(cluster, t, split_axis=2, concat_axis=1, group=grp)
            t = all_to_all(cluster, t, split_axis=1, concat_axis=2, group=grp)
            t = all_gather(cluster, t, axis=1, group=grp)
            t = reduce_scatter(cluster, t, axis=1, group=grp)
            t = all_reduce(cluster, t, group=grp)
            t = ring_shift(cluster, t, shift=1, group=grp)
            data = [x.data.copy() for x in t]
            for x in t:
                x.free()
            cluster.check_no_leaks()
            return data, self._signature(cluster)

        data_default, sig_default = run(False)
        data_world, sig_world = run(True)
        for a, b in zip(data_default, data_world):
            assert a.tobytes() == b.tobytes()
        assert sig_default == sig_world
