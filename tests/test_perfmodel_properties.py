"""Property-based tests on the performance model: monotonicity and
consistency laws that must hold for any configuration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import K_TOKENS, parse_tokens
from repro.hardware import make_cluster, paper_node_a100_80g
from repro.models import GPT_2_7B, LLAMA_8B, MODEL_ZOO
from repro.perfmodel import (
    FPDT_FULL,
    ULYSSES,
    estimate_memory,
    simulate_fpdt_layer,
    simulate_step_time,
)
from repro.perfmodel.pipeline_sim import StreamSimulator, Task

NODE = paper_node_a100_80g()

seq_lengths = st.integers(1, 32).map(lambda n: n * 32 * K_TOKENS)
worlds = st.sampled_from([2, 4, 8, 16])
models = st.sampled_from(sorted(MODEL_ZOO))


class TestMemoryModelProperties:
    @settings(max_examples=25, deadline=None)
    @given(s=seq_lengths, world=worlds, name=models)
    def test_activations_monotone_in_sequence(self, s, world, name):
        cfg = MODEL_ZOO[name]
        m1 = estimate_memory(cfg, FPDT_FULL, s, world)
        m2 = estimate_memory(cfg, FPDT_FULL, 2 * s, world)
        assert m2.activations >= m1.activations

    @settings(max_examples=25, deadline=None)
    @given(s=seq_lengths, name=models)
    def test_model_states_monotone_in_world(self, s, name):
        cfg = MODEL_ZOO[name]
        m4 = estimate_memory(cfg, FPDT_FULL, s * 2, 4)
        m8 = estimate_memory(cfg, FPDT_FULL, s * 2, 8)
        assert m8.model_states <= m4.model_states

    @settings(max_examples=20, deadline=None)
    @given(s=seq_lengths, world=worlds)
    def test_components_nonnegative(self, s, world):
        for strat in (FPDT_FULL, ULYSSES):
            m = estimate_memory(LLAMA_8B, strat, s, world)
            assert m.model_states >= 0
            assert m.checkpoints >= 0
            assert m.working_set >= 0
            assert m.loss_head >= 0
            assert m.device_total >= m.model_states

    @settings(max_examples=15, deadline=None)
    @given(s=seq_lengths)
    def test_fpdt_activations_never_exceed_ulysses(self, s):
        """FPDT is Ulysses plus chunking: its sequence-dependent memory
        can only be smaller."""
        m_fp = estimate_memory(LLAMA_8B, FPDT_FULL, s, 8)
        m_ul = estimate_memory(LLAMA_8B, ULYSSES, s, 8)
        assert m_fp.activations <= m_ul.activations


class TestStepTimeProperties:
    @settings(max_examples=10, deadline=None)
    @given(s=st.sampled_from([parse_tokens(x) for x in ("128K", "256K", "512K")]))
    def test_step_time_positive_and_monotone(self, s):
        t1 = simulate_step_time(LLAMA_8B, FPDT_FULL, s, 8, NODE)
        t2 = simulate_step_time(LLAMA_8B, FPDT_FULL, 2 * s, 8, NODE)
        assert 0 < t1 < t2

    def test_more_gpus_faster_per_step(self):
        s = parse_tokens("512K")
        t4 = simulate_step_time(GPT_2_7B, FPDT_FULL, s, 4, NODE)
        t8 = simulate_step_time(GPT_2_7B, FPDT_FULL, s, 8, NODE)
        assert t8 < t4


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        durations=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=12),
        n_resources=st.integers(1, 3),
    )
    def test_makespan_bounds(self, durations, n_resources):
        """Makespan >= max per-resource busy time (resource bound) and
        <= total serial time (no time travel)."""
        tasks = [
            Task(f"t{i}", f"r{i % n_resources}", d)
            for i, d in enumerate(durations)
        ]
        res = StreamSimulator().run(tasks)
        assert res.makespan <= sum(durations) + 1e-9
        for resource, busy in res.busy.items():
            assert res.makespan >= busy - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(durations=st.lists(st.floats(0.001, 5.0), min_size=2, max_size=8))
    def test_chain_makespan_is_sum(self, durations):
        """A dependency chain across distinct resources serializes."""
        tasks = [
            Task(f"t{i}", f"r{i}", d, (f"t{i-1}",) if i else ())
            for i, d in enumerate(durations)
        ]
        res = StreamSimulator().run(tasks)
        assert res.makespan == pytest.approx(sum(durations))

    @settings(max_examples=8, deadline=None)
    @given(chunk=st.sampled_from([parse_tokens(c) for c in ("16K", "32K", "64K")]))
    def test_fpdt_pipeline_dominates_compute_bound(self, chunk):
        """The pipeline can never beat its own compute content."""
        cluster = make_cluster(NODE, 4)
        res = simulate_fpdt_layer(LLAMA_8B, cluster, parse_tokens("256K"), chunk)
        assert res.makespan >= res.busy.get("compute", 0.0) - 1e-9
