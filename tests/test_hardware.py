"""Unit tests for hardware specs and topology."""

import pytest

from repro.common.units import GB, GIB
from repro.hardware import (
    A100_40G,
    A100_80G,
    HDR_IB,
    NVLINK3,
    PCIE_GEN4_X16,
    make_cluster,
    paper_node_a100_80g,
)
from repro.hardware.topology import ClusterSpec


class TestSpecs:
    def test_a100_80g_capacity(self):
        assert A100_80G.hbm_bytes == 80 * GIB
        assert A100_80G.hbm_gib == 80.0

    def test_a100_bf16_peak(self):
        assert A100_40G.peak_flops_bf16 == pytest.approx(312e12)

    def test_pcie_is_shared_nvlink_is_not(self):
        assert PCIE_GEN4_X16.shared
        assert not NVLINK3.shared

    def test_link_transfer_time_alpha_beta(self):
        t = PCIE_GEN4_X16.transfer_time(32 * GB)
        assert t == pytest.approx(1.0 + PCIE_GEN4_X16.latency)

    def test_link_transfer_efficiency(self):
        full = NVLINK3.transfer_time(GB)
        half = NVLINK3.transfer_time(GB, efficiency=0.5)
        assert half > full

    def test_transfer_negative_bytes_raises(self):
        with pytest.raises(ValueError):
            NVLINK3.transfer_time(-1)

    def test_transfer_bad_efficiency_raises(self):
        with pytest.raises(ValueError):
            NVLINK3.transfer_time(1, efficiency=0.0)


class TestTopology:
    def test_world_size(self):
        cluster = make_cluster(paper_node_a100_80g(), 8)
        assert cluster.world_size == 8
        assert cluster.num_nodes == 2

    def test_node_and_local_rank(self):
        cluster = make_cluster(paper_node_a100_80g(), 8)
        assert cluster.node_of(5) == 1
        assert cluster.local_rank(5) == 1

    def test_intra_node_link_is_nvlink(self):
        cluster = make_cluster(paper_node_a100_80g(), 8)
        assert cluster.link_between(0, 3) is NVLINK3

    def test_inter_node_link_is_ib(self):
        cluster = make_cluster(paper_node_a100_80g(), 8)
        assert cluster.link_between(0, 4) is HDR_IB

    def test_self_link_raises(self):
        cluster = make_cluster(paper_node_a100_80g(), 4)
        with pytest.raises(ValueError):
            cluster.link_between(2, 2)

    def test_collective_bottleneck_intra_node(self):
        cluster = make_cluster(paper_node_a100_80g(), 8)
        assert cluster.collective_bottleneck([0, 1, 2, 3]) is NVLINK3

    def test_collective_bottleneck_inter_node(self):
        cluster = make_cluster(paper_node_a100_80g(), 8)
        assert cluster.collective_bottleneck(list(range(8))) is HDR_IB

    def test_collective_needs_two_ranks(self):
        cluster = make_cluster(paper_node_a100_80g(), 4)
        with pytest.raises(ValueError):
            cluster.collective_bottleneck([0])

    def test_pcie_root_sharing(self):
        # 4 GPUs per node, 2 per PCIe root: ranks {0,1} and {2,3} share.
        cluster = make_cluster(paper_node_a100_80g(), 4)
        assert cluster.ranks_sharing_pcie_root(0) == [0, 1]
        assert cluster.ranks_sharing_pcie_root(3) == [2, 3]

    def test_partial_node(self):
        cluster = make_cluster(paper_node_a100_80g(), 2)
        assert cluster.world_size == 2
        assert cluster.num_nodes == 1

    def test_non_multiple_gpu_count_raises(self):
        with pytest.raises(ValueError):
            make_cluster(paper_node_a100_80g(), 6)

    def test_rank_out_of_range(self):
        cluster = make_cluster(paper_node_a100_80g(), 4)
        with pytest.raises(ValueError):
            cluster.node_of(4)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(node=paper_node_a100_80g(), num_nodes=0)
