"""Health monitors: fault injection and healthy-run silence.

Each monitor gets both directions: a deliberately injected fault (a
leaked chunk-cache allocation, a perturbed rank parameter, a skewed
compute trace) must fire, and the corresponding healthy run must not.
"""

import numpy as np
import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt
from repro.profiler import profile_cluster
from repro.runtime import VirtualCluster
from repro.telemetry import (
    DesyncMonitor,
    MemorySink,
    MemoryWatermarkMonitor,
    RunLogger,
    StepRecord,
    StragglerMonitor,
    checksum_params,
)
from repro.training import SyntheticCorpus
from repro.training.trainer import Trainer


def _record(step, *, host=0, hbm=(), checksums=None):
    return StepRecord(
        step=step, loss=1.0, lr=1e-3, tokens=32, tokens_total=32 * (step + 1),
        host_live_bytes=host, hbm_live_bytes=list(hbm),
        param_checksums=dict(checksums or {}),
    )


def _telemetry_trainer(*, leak_bytes=0, steps=8, monitors):
    """Train a real FPDT-offload loop; optionally leak ``leak_bytes``
    of host chunk-cache memory per step (never freed)."""
    cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32)
    model = GPTModel(cfg, seed=3)
    corpus = SyntheticCorpus(cfg.vocab_size, branching=2, seed=3)
    runner = FPDTModelRunner(
        model, VirtualCluster(2), num_chunks=2, offload=True, loss_chunks=2
    )
    logger = RunLogger(monitors=monitors)
    trainer = Trainer(model, corpus, runner=runner, lr=5e-3, telemetry=logger)
    for _ in range(steps):
        if leak_bytes:
            runner.cluster.host.pool.alloc(leak_bytes, tag="chunk_cache:leak")
        trainer.step(batch_size=2, seq_len=16)
    return logger


class TestMemoryWatermarkMonitor:
    def test_fires_on_leaked_chunk_cache_allocation(self):
        """Fault injection: one chunk-cache host allocation leaked per
        step makes host live bytes grow monotonically — the monitor
        must flag it during a real training loop."""
        monitor = MemoryWatermarkMonitor(patience=3)
        logger = _telemetry_trainer(leak_bytes=4096, steps=8,
                                    monitors=[monitor])
        assert monitor.fired
        alert = monitor.alerts[0]
        assert alert.data["pool"] == "host"
        assert "leak" in alert.message
        assert logger.alerts  # forwarded to the run logger

    def test_healthy_run_is_silent(self):
        """A correct FPDT-offload step returns its pools to baseline,
        so the same loop without the injected leak must not fire."""
        monitor = MemoryWatermarkMonitor(patience=3)
        _telemetry_trainer(leak_bytes=0, steps=8, monitors=[monitor])
        assert not monitor.fired

    def test_growth_must_be_sustained(self):
        monitor = MemoryWatermarkMonitor(patience=3)
        # Grows twice, resets, grows twice: never 3 in a row.
        for step, host in enumerate([10, 20, 30, 5, 15, 25]):
            monitor.observe_step(_record(step, host=host))
        assert not monitor.fired

    def test_refires_along_a_long_leak(self):
        monitor = MemoryWatermarkMonitor(patience=2)
        for step in range(6):
            monitor.observe_step(_record(step, host=100 * (step + 1)))
        # Streak hits 2, 4 — one alert each (not one per step).
        assert len(monitor.alerts) == 2

    def test_tracks_per_rank_hbm_pools(self):
        monitor = MemoryWatermarkMonitor(patience=2)
        for step in range(4):
            monitor.observe_step(
                _record(step, hbm=(1000, 1000 + 64 * step))
            )
        assert monitor.fired
        assert monitor.alerts[0].data["pool"] == "hbm:1"

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            MemoryWatermarkMonitor(patience=0)


class TestDesyncMonitor:
    def test_fires_on_perturbed_rank_parameter(self):
        """Fault injection: perturb one element of one rank's parameter
        copy — its checksum shifts and the spread check must fire."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        params = GPTModel(cfg, seed=0).all_params()
        healthy = checksum_params(params)
        perturbed = dict(params)
        name = sorted(params)[0]
        bad = params[name].copy()
        bad.flat[0] += 1e-3
        perturbed[name] = bad
        monitor = DesyncMonitor()
        alerts = monitor.observe_checksums(
            5, {0: healthy, 1: checksum_params(perturbed), 2: healthy}
        )
        assert monitor.fired
        assert alerts[0].step == 5
        assert alerts[0].data["spread"] > 0

    def test_identical_checksums_are_silent(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        c = checksum_params(GPTModel(cfg, seed=0).all_params())
        monitor = DesyncMonitor()
        assert monitor.observe_checksums(0, {0: c, 1: c, 2: c, 3: c}) == []
        assert not monitor.fired

    def test_single_rank_cannot_desync(self):
        monitor = DesyncMonitor()
        assert monitor.observe_checksums(0, {0: 1.0}) == []

    def test_tolerance_allows_small_spread(self):
        monitor = DesyncMonitor(tolerance=1e-6)
        assert monitor.observe_checksums(0, {0: 1.0, 1: 1.0 + 1e-7}) == []
        assert monitor.observe_checksums(1, {0: 1.0, 1: 1.0 + 1e-5})

    def test_observes_step_records(self):
        monitor = DesyncMonitor()
        monitor.observe_step(_record(2, checksums={0: 1.0, 1: 2.0}))
        assert monitor.fired and monitor.alerts[0].step == 2

    def test_real_training_loop_stays_in_sync(self):
        monitor = DesyncMonitor()
        _telemetry_trainer(steps=4, monitors=[monitor])
        assert not monitor.fired

    def test_checksum_sensitive_to_single_element(self):
        params = {"a": np.ones((4, 4)), "b": np.arange(8.0)}
        base = checksum_params(params)
        params["b"] = params["b"].copy()
        params["b"][3] += 1e-9
        assert checksum_params(params) != base


class TestStragglerMonitor:
    def _profile(self, flops_by_rank):
        cluster = VirtualCluster(len(flops_by_rank))
        for rank, flops in enumerate(flops_by_rank):
            cluster.devices[rank].compute("gemm", flops=flops, stream="compute")
        return profile_cluster(cluster)

    def test_fires_on_skewed_trace(self):
        monitor = StragglerMonitor(imbalance_threshold=1.25)
        alerts = monitor.observe_profile(self._profile([4e12, 1e12]))
        assert monitor.fired
        assert alerts[0].data["worst_rank"] == 0
        assert alerts[0].data["ratio"] == pytest.approx(4 / 2.5)
        assert alerts[0].step == -1  # run-level, not tied to a step

    def test_balanced_trace_is_silent(self):
        monitor = StragglerMonitor()
        assert monitor.observe_profile(self._profile([1e12, 1e12])) == []

    def test_single_rank_is_silent(self):
        monitor = StragglerMonitor()
        assert monitor.observe_profile(self._profile([1e12])) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            StragglerMonitor(imbalance_threshold=1.0)

    def test_balanced_fpdt_run_is_silent(self):
        """FPDT's load-balanced chunking keeps the simulated per-rank
        compute times equal, so a real profiled run must not fire."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32)
        model = GPTModel(cfg, seed=3)
        corpus = SyntheticCorpus(cfg.vocab_size, branching=2, seed=3)
        runner = FPDTModelRunner(
            model, VirtualCluster(2), num_chunks=2, offload=True, loss_chunks=2
        )
        monitor = StragglerMonitor()
        logger = RunLogger(monitors=[monitor])
        Trainer(model, corpus, runner=runner, lr=5e-3, telemetry=logger).train(
            2, batch_size=2, seq_len=16, profile=True
        )
        assert not monitor.fired


class TestSLObjective:
    def test_parse_aliases_and_raw_metric_names(self):
        from repro.telemetry import SLObjective

        obj = SLObjective.parse("ttft_p99<=40")
        assert obj.metric == "serving_ttft_ticks"
        assert obj.quantile == pytest.approx(0.99)
        assert obj.threshold == 40.0
        assert obj.name == "ttft_p99"
        raw = SLObjective.parse("serving_queue_wait_ticks_p50 <= 12.5")
        assert raw.metric == "serving_queue_wait_ticks"
        assert raw.quantile == pytest.approx(0.5)
        assert raw.threshold == 12.5

    @pytest.mark.parametrize("bad", [
        "ttft_p99", "ttft<=40", "ttft_p99<=forty", "ttft_pxx<=40",
        "ttft_p200<=40", "ttft_p0<=40",
    ])
    def test_parse_rejects_malformed_specs(self, bad):
        from repro.telemetry import SLObjective

        with pytest.raises(ValueError):
            SLObjective.parse(bad)

    def test_field_validation(self):
        from repro.telemetry import SLObjective

        with pytest.raises(ValueError):
            SLObjective(name="x", metric="m", quantile=1.5, threshold=1.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", metric="m", quantile=0.5, threshold=1.0,
                        target=1.0)


class TestSLOMonitor:
    def _registry(self, latencies):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        hist = registry.histogram("serving_latency_ticks")
        for v in latencies:
            hist.observe(v)
        return registry

    def test_within_objective_is_silent(self):
        from repro.telemetry import SLOMonitor

        registry = self._registry([5, 6, 7, 8])
        monitor = SLOMonitor(["latency_p99<=10"], registry=registry)
        assert monitor.evaluate(step=3) == []
        assert not monitor.fired and monitor.violations == 0
        entry = monitor.last["latency_p99"]
        assert entry["value"] == 8 and not entry["violated"]

    def test_quantile_violation_fires(self):
        from repro.telemetry import SLOMonitor

        registry = self._registry([5, 6, 7, 50])
        monitor = SLOMonitor(["latency_p99<=10"], registry=registry)
        alerts = monitor.evaluate(step=9)
        assert monitor.fired and monitor.violations == 1
        assert alerts[0].step == 9
        assert alerts[0].data["value"] == 50

    def test_burn_rate_fires_even_when_quantile_ok(self):
        """5% of observations over threshold burns a 99% budget at 5x
        even though p50 looks healthy."""
        from repro.telemetry import SLOMonitor

        latencies = [1.0] * 95 + [100.0] * 5
        registry = self._registry(latencies)
        monitor = SLOMonitor(["latency_p50<=10"], registry=registry,
                             burn_alert=1.0)
        alerts = monitor.evaluate()
        assert alerts and "burn rate" in alerts[0].message
        entry = monitor.last["latency_p50"]
        assert not entry["violated"]  # p50 = 1.0, fine
        assert entry["burn_rate"] == pytest.approx(5.0)

    def test_empty_histogram_is_skipped_not_violated(self):
        from repro.telemetry import MetricsRegistry, SLOMonitor

        monitor = SLOMonitor(["ttft_p99<=10"], registry=MetricsRegistry())
        assert monitor.evaluate() == []
        assert monitor.last["ttft_p99"]["skipped"]
        assert monitor.violations == 0

    def test_eval_every_drives_step_observation(self):
        from repro.telemetry import SLOMonitor

        registry = self._registry([50])
        monitor = SLOMonitor(["latency_p50<=10"], registry=registry,
                             eval_every=2)
        assert monitor.observe_step(_record(0))  # step 0: evaluates
        assert monitor.observe_step(_record(1)) == []  # step 1: skip
        assert monitor.observe_step(_record(2))  # step 2: evaluates again
        assert monitor.violations == 2


class TestRunLoggerAlertPlumbing:
    def test_alerts_reach_sinks_as_records(self):
        sink = MemorySink()
        logger = RunLogger(sinks=[sink], monitors=[DesyncMonitor()])
        logger.log_step(_record(0, checksums={0: 1.0, 1: 5.0}))
        kinds = [r["record"] for r in sink.records]
        assert kinds == ["step", "alert"]
        assert sink.records[1]["monitor"] == "cross_rank_desync"
        summary = logger.finish()
        assert summary["alerts"] == 1
        assert sink.closed  # finish() closes the sinks
        assert sink.records[-1]["record"] == "run_summary"
