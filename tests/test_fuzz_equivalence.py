"""Randomized end-to-end equivalence fuzzing.

Hypothesis draws a whole configuration — architecture family, head/GQA
geometry, sliding window, world size, chunk count, offload flag, batch
size — and FPDT must match the single-device reference on outputs and
input gradients.  This is the widest net in the suite: any interaction
bug between chunking, the shuffle, GQA expansion, RoPE offsets, window
masks and offloading shows up here first.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChunkLayout, fpdt_block_backward, fpdt_block_forward
from repro.core.chunking import shard_sequence, unshard_sequence
from repro.models import TransformerBlock, tiny_gpt, tiny_llama
from repro.runtime import VirtualCluster, fast_path

from .helpers import rng


@st.composite
def fpdt_configs(draw):
    """A random-but-valid (cfg, world, num_chunks, batch, offload) tuple."""
    arch = draw(st.sampled_from(["gpt", "llama"]))
    world = draw(st.sampled_from([1, 2, 4]))
    heads_per_rank = draw(st.sampled_from([1, 2]))
    num_heads = world * heads_per_rank
    head_dim = draw(st.sampled_from([4, 8]))
    hidden = num_heads * head_dim
    if arch == "gpt":
        cfg = tiny_gpt(hidden_size=hidden, num_heads=num_heads, vocab_size=64)
    else:
        kv_choices = [k for k in (1, 2, num_heads) if num_heads % k == 0]
        cfg = tiny_llama(
            hidden_size=hidden, num_heads=num_heads,
            num_kv_heads=draw(st.sampled_from(kv_choices)), vocab_size=64,
        )
    window = draw(st.sampled_from([None, None, 3, 8, 64]))
    if window is not None:
        cfg = cfg.scaled(attention_window=window)
    num_chunks = draw(st.sampled_from([1, 2, 4]))
    chunk_len = draw(st.sampled_from([2, 3]))
    batch = draw(st.sampled_from([1, 2]))
    offload = draw(st.booleans())
    s_global = world * num_chunks * chunk_len
    return cfg, world, num_chunks, batch, offload, s_global


@settings(max_examples=30, deadline=None)
@given(config=fpdt_configs(), seed=st.integers(0, 10_000))
def test_fpdt_matches_reference_for_random_configs(config, seed):
    cfg, world, num_chunks, batch, offload, s_global = config
    block = TransformerBlock(cfg, rng(seed))
    g = rng(seed + 1)
    x = g.normal(size=(batch, s_global, cfg.hidden_size))
    dy = g.normal(size=x.shape)
    y_ref = block.forward(x)
    dx_ref = block.backward(dy)

    layout = ChunkLayout(s_global, world, num_chunks)
    cluster = VirtualCluster(world)
    y_shards, ctx = fpdt_block_forward(
        cluster, block.params, cfg, layout, shard_sequence(x, layout), offload=offload
    )
    dx_shards, _ = fpdt_block_backward(cluster, cfg, ctx, shard_sequence(dy, layout))
    np.testing.assert_allclose(
        unshard_sequence(y_shards, layout), y_ref, rtol=1e-7, atol=1e-9
    )
    np.testing.assert_allclose(
        unshard_sequence(dx_shards, layout), dx_ref, rtol=1e-6, atol=1e-8
    )
    cluster.check_no_leaks()


def _fpdt_run(cfg, world, num_chunks, batch, offload, s_global, seed, enabled):
    """One FPDT forward+backward under the given fast-path setting."""
    block = TransformerBlock(cfg, rng(seed))
    g = rng(seed + 1)
    x = g.normal(size=(batch, s_global, cfg.hidden_size))
    dy = g.normal(size=x.shape)
    layout = ChunkLayout(s_global, world, num_chunks)
    with fast_path(enabled):
        cluster = VirtualCluster(world)
        y_shards, ctx = fpdt_block_forward(
            cluster, block.params, cfg, layout, shard_sequence(x, layout),
            offload=offload,
        )
        dx_shards, grads = fpdt_block_backward(
            cluster, cfg, ctx, shard_sequence(dy, layout)
        )
    return (
        unshard_sequence(y_shards, layout),
        unshard_sequence(dx_shards, layout),
        grads,
    )


@settings(max_examples=10, deadline=None)
@given(config=fpdt_configs(), seed=st.integers(0, 10_000))
def test_fast_path_is_bitwise_identical(config, seed):
    """The zero-copy fast path only changes where result buffers come
    from (arena vs fresh allocation); the op sequence is shared, so
    outputs, input grads and parameter grads must match *bitwise*."""
    cfg, world, num_chunks, batch, offload, s_global = config
    y_on, dx_on, g_on = _fpdt_run(
        cfg, world, num_chunks, batch, offload, s_global, seed, True
    )
    y_off, dx_off, g_off = _fpdt_run(
        cfg, world, num_chunks, batch, offload, s_global, seed, False
    )
    np.testing.assert_array_equal(y_on, y_off)
    np.testing.assert_array_equal(dx_on, dx_off)
    assert g_on.keys() == g_off.keys()
    for key in g_on:
        np.testing.assert_array_equal(g_on[key], g_off[key])
