"""Direct tests of the pure block-phase functions (the shared kernels
every strategy composes), including numerical gradient checks."""

import numpy as np
import pytest

from repro.models import TransformerBlock, tiny_gpt, tiny_llama
from repro.models.attention import (
    attention_backward_reference,
    attention_forward_reference,
)
from repro.models.block_ops import (
    accumulate_grads,
    attn_post_backward,
    attn_post_forward,
    attn_pre_backward,
    attn_pre_forward,
    ffn_backward,
    ffn_forward,
)

from .helpers import numerical_grad, rng


def _params(cfg, seed=0):
    return TransformerBlock(cfg, rng(seed)).params


class TestAccumulateGrads:
    def test_sum_semantics(self):
        into = {"a": np.ones(2)}
        accumulate_grads(into, {"a": np.full(2, 3.0), "b": np.ones(3)})
        np.testing.assert_array_equal(into["a"], [4.0, 4.0])
        np.testing.assert_array_equal(into["b"], np.ones(3))

    def test_does_not_mutate_source(self):
        src = {"a": np.ones(2)}
        into = {}
        accumulate_grads(into, src)
        into["a"] += 1
        np.testing.assert_array_equal(src["a"], np.ones(2))


@pytest.mark.parametrize(
    "cfg_factory",
    [
        pytest.param(lambda: tiny_gpt(hidden_size=16, num_heads=2), id="gpt"),
        pytest.param(lambda: tiny_llama(hidden_size=16, num_heads=4, num_kv_heads=2), id="llama"),
    ],
)
class TestAttnPrePhase:
    def test_shapes(self, cfg_factory):
        cfg = cfg_factory()
        params = _params(cfg)
        x = rng(1).normal(size=(2, 5, cfg.hidden_size))
        qh, kh, vh, _ = attn_pre_forward(params, cfg, x, np.arange(5))
        assert qh.shape == (2, 5, cfg.num_heads, cfg.head_dim)
        # GQA already expanded to full heads.
        assert kh.shape == qh.shape and vh.shape == qh.shape

    def test_backward_input_gradient(self, cfg_factory):
        cfg = cfg_factory()
        params = _params(cfg)
        g = rng(2)
        x = g.normal(size=(1, 3, cfg.hidden_size))
        pos = np.arange(3)
        dq = g.normal(size=(1, 3, cfg.num_heads, cfg.head_dim))
        dk = g.normal(size=dq.shape)
        dv = g.normal(size=dq.shape)
        _, _, _, cache = attn_pre_forward(params, cfg, x, pos)
        dx, grads = attn_pre_backward(cfg, dq, dk, dv, cache)

        def f(x_):
            qh, kh, vh, _ = attn_pre_forward(params, cfg, x_, pos)
            return float((qh * dq).sum() + (kh * dk).sum() + (vh * dv).sum())

        np.testing.assert_allclose(dx, numerical_grad(f, x.copy()), rtol=1e-4, atol=1e-7)
        assert "attn.wq" in grads and "ln1.gamma" in grads

    def test_backward_weight_gradient(self, cfg_factory):
        cfg = cfg_factory()
        params = _params(cfg)
        g = rng(3)
        x = g.normal(size=(1, 3, cfg.hidden_size))
        pos = np.arange(3)
        dq = g.normal(size=(1, 3, cfg.num_heads, cfg.head_dim))
        zeros = np.zeros_like(dq)
        _, _, _, cache = attn_pre_forward(params, cfg, x, pos)
        _, grads = attn_pre_backward(cfg, dq, zeros, zeros, cache)

        def f(w):
            params["attn.wq"] = w
            qh, _, _, _ = attn_pre_forward(params, cfg, x, pos)
            return float((qh * dq).sum())

        numeric = numerical_grad(f, params["attn.wq"].copy())
        np.testing.assert_allclose(grads["attn.wq"], numeric, rtol=1e-4, atol=1e-7)


class TestAttnPostAndFfnPhases:
    def test_post_residual_path(self):
        cfg = tiny_gpt(hidden_size=16, num_heads=2)
        params = _params(cfg)
        g = rng(4)
        x = g.normal(size=(1, 3, 16))
        o = g.normal(size=(1, 3, 2, 8))
        y, cache = attn_post_forward(params, x, o)
        dy = g.normal(size=y.shape)
        do, dres, grads = attn_post_backward(dy, cache)
        assert do.shape == o.shape
        np.testing.assert_array_equal(dres, dy)  # residual passes dy through

        def f(o_):
            out, _ = attn_post_forward(params, x, o_)
            return float((out * dy).sum())

        np.testing.assert_allclose(do, numerical_grad(f, o.copy()), rtol=1e-4, atol=1e-7)

    @pytest.mark.parametrize(
        "cfg_factory",
        [
            pytest.param(lambda: tiny_gpt(hidden_size=16, num_heads=2), id="gpt"),
            pytest.param(lambda: tiny_llama(hidden_size=16, num_heads=4, num_kv_heads=2), id="llama"),
        ],
    )
    def test_ffn_gradcheck(self, cfg_factory):
        cfg = cfg_factory()
        params = _params(cfg)
        g = rng(5)
        x = g.normal(size=(1, 3, 16))
        dy = g.normal(size=x.shape)
        _, cache = ffn_forward(params, cfg, x)
        dx, grads = ffn_backward(dy, cache)

        def f(x_):
            y, _ = ffn_forward(params, cfg, x_)
            return float((y * dy).sum())

        np.testing.assert_allclose(dx, numerical_grad(f, x.copy()), rtol=1e-4, atol=1e-6)
        assert any(k.startswith("ffn.") for k in grads)

    def test_phase_composition_equals_block(self):
        """pre + reference-attention + post + ffn == TransformerBlock."""
        cfg = tiny_gpt(hidden_size=16, num_heads=2)
        block = TransformerBlock(cfg, rng(6))
        x = rng(7).normal(size=(1, 4, 16))
        y_block = block.forward(x)
        qh, kh, vh, _ = attn_pre_forward(block.params, cfg, x, np.arange(4))
        o, _ = attention_forward_reference(qh, kh, vh)
        mid, _ = attn_post_forward(block.params, x, o)
        y_composed, _ = ffn_forward(block.params, cfg, mid)
        np.testing.assert_allclose(y_composed, y_block, rtol=1e-12)

    def test_chunked_phase_application_is_token_local(self):
        """Applying the phases chunk-by-chunk equals whole-tensor
        application — the token-locality FPDT's chunking relies on."""
        cfg = tiny_llama(hidden_size=16, num_heads=4, num_kv_heads=2)
        params = _params(cfg)
        x = rng(8).normal(size=(1, 8, 16))
        whole, _ = ffn_forward(params, cfg, x)
        parts = [ffn_forward(params, cfg, x[:, i : i + 2])[0] for i in range(0, 8, 2)]
        np.testing.assert_allclose(np.concatenate(parts, axis=1), whole, rtol=1e-12)
