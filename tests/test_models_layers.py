"""Gradient checks for every functional layer kernel."""

import numpy as np
import pytest

from repro.models.layers import (
    embedding_backward,
    embedding_forward,
    gelu_backward,
    gelu_forward,
    layernorm_backward,
    layernorm_forward,
    linear_backward,
    linear_forward,
    make_rope_cache,
    merge_heads,
    reduce_kv_grad,
    repeat_kv,
    rmsnorm_backward,
    rmsnorm_forward,
    rope_backward,
    rope_forward,
    silu_backward,
    silu_forward,
    split_heads,
)

from .helpers import assert_grad_close, numerical_grad, rng


class TestLinear:
    def test_forward_matches_matmul(self):
        g = rng(0)
        x, w, b = g.normal(size=(2, 3, 4)), g.normal(size=(4, 5)), g.normal(size=5)
        y, _ = linear_forward(x, w, b)
        np.testing.assert_allclose(y, x @ w + b)

    def test_grad_x(self):
        g = rng(1)
        x, w, b = g.normal(size=(2, 3, 4)), g.normal(size=(4, 5)), g.normal(size=5)
        dy = g.normal(size=(2, 3, 5))

        def f(x_):
            y, _ = linear_forward(x_, w, b)
            return float((y * dy).sum())

        _, cache = linear_forward(x, w, b)
        dx, _, _ = linear_backward(dy, cache)
        assert_grad_close(dx, numerical_grad(f, x))

    def test_grad_w_and_b(self):
        g = rng(2)
        x, w, b = g.normal(size=(2, 3)), g.normal(size=(3, 4)), g.normal(size=4)
        dy = g.normal(size=(2, 4))
        _, cache = linear_forward(x, w, b)
        _, dw, db = linear_backward(dy, cache)

        def fw(w_):
            y, _ = linear_forward(x, w_, b)
            return float((y * dy).sum())

        def fb(b_):
            y, _ = linear_forward(x, w, b_)
            return float((y * dy).sum())

        assert_grad_close(dw, numerical_grad(fw, w))
        assert_grad_close(db, numerical_grad(fb, b))

    def test_no_bias(self):
        g = rng(3)
        x, w = g.normal(size=(2, 3)), g.normal(size=(3, 4))
        y, cache = linear_forward(x, w)
        np.testing.assert_allclose(y, x @ w)
        _, _, db = linear_backward(np.ones_like(y), cache)
        assert db is None


class TestNorms:
    def test_layernorm_normalizes(self):
        g = rng(0)
        x = g.normal(2.0, 3.0, size=(4, 8))
        y, _ = layernorm_forward(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(y.mean(axis=-1), 0, atol=1e-12)
        np.testing.assert_allclose(y.var(axis=-1), 1, atol=1e-4)

    def test_layernorm_grads(self):
        g = rng(1)
        x = g.normal(size=(3, 6))
        gamma, beta = g.normal(size=6), g.normal(size=6)
        dy = g.normal(size=(3, 6))
        _, cache = layernorm_forward(x, gamma, beta)
        dx, dgamma, dbeta = layernorm_backward(dy, cache)

        def fx(x_):
            y, _ = layernorm_forward(x_, gamma, beta)
            return float((y * dy).sum())

        def fg(g_):
            y, _ = layernorm_forward(x, g_, beta)
            return float((y * dy).sum())

        assert_grad_close(dx, numerical_grad(fx, x), rtol=1e-4, atol=1e-6)
        assert_grad_close(dgamma, numerical_grad(fg, gamma), rtol=1e-5)
        assert_grad_close(dbeta, dy.sum(axis=0))

    def test_rmsnorm_scale_invariant_direction(self):
        g = rng(2)
        x = g.normal(size=(2, 8))
        y1, _ = rmsnorm_forward(x, np.ones(8))
        y2, _ = rmsnorm_forward(3.0 * x, np.ones(8))
        np.testing.assert_allclose(y1, y2, atol=1e-5)

    def test_rmsnorm_grads(self):
        g = rng(3)
        x = g.normal(size=(3, 6))
        gamma = g.normal(size=6)
        dy = g.normal(size=(3, 6))
        _, cache = rmsnorm_forward(x, gamma)
        dx, dgamma = rmsnorm_backward(dy, cache)

        def fx(x_):
            y, _ = rmsnorm_forward(x_, gamma)
            return float((y * dy).sum())

        def fg(g_):
            y, _ = rmsnorm_forward(x, g_)
            return float((y * dy).sum())

        assert_grad_close(dx, numerical_grad(fx, x), rtol=1e-4, atol=1e-6)
        assert_grad_close(dgamma, numerical_grad(fg, gamma), rtol=1e-5)


class TestActivations:
    def test_gelu_grad(self):
        g = rng(0)
        x = g.normal(size=(4, 4))
        dy = g.normal(size=(4, 4))
        _, cache = gelu_forward(x)
        dx = gelu_backward(dy, cache)

        def f(x_):
            y, _ = gelu_forward(x_)
            return float((y * dy).sum())

        assert_grad_close(dx, numerical_grad(f, x), rtol=1e-5, atol=1e-7)

    def test_silu_grad(self):
        g = rng(1)
        x = g.normal(size=(4, 4))
        dy = g.normal(size=(4, 4))
        _, cache = silu_forward(x)
        dx = silu_backward(dy, cache)

        def f(x_):
            y, _ = silu_forward(x_)
            return float((y * dy).sum())

        assert_grad_close(dx, numerical_grad(f, x), rtol=1e-5, atol=1e-7)

    def test_gelu_asymptotes(self):
        y, _ = gelu_forward(np.array([-20.0, 0.0, 20.0]))
        np.testing.assert_allclose(y, [0.0, 0.0, 20.0], atol=1e-6)


class TestEmbedding:
    def test_gather(self):
        table = np.arange(12.0).reshape(4, 3)
        ids = np.array([[0, 3], [1, 1]])
        y, _ = embedding_forward(ids, table)
        np.testing.assert_array_equal(y[0, 1], table[3])

    def test_scatter_add_backward_duplicates(self):
        table = np.zeros((4, 3))
        ids = np.array([[1, 1, 2]])
        _, cache = embedding_forward(ids, table)
        dy = np.ones((1, 3, 3))
        dtable = embedding_backward(dy, cache)
        np.testing.assert_array_equal(dtable[1], [2.0, 2.0, 2.0])
        np.testing.assert_array_equal(dtable[2], [1.0, 1.0, 1.0])
        np.testing.assert_array_equal(dtable[0], [0.0, 0.0, 0.0])


class TestRope:
    def test_rotation_preserves_norm(self):
        g = rng(0)
        x = g.normal(size=(1, 8, 2, 6))
        cache = make_rope_cache(6, np.arange(8))
        y = rope_forward(x, cache)
        np.testing.assert_allclose(
            np.linalg.norm(y, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-10
        )

    def test_backward_is_inverse_rotation(self):
        g = rng(1)
        x = g.normal(size=(1, 4, 2, 4))
        cache = make_rope_cache(4, np.arange(4))
        y = rope_forward(x, cache)
        back = rope_backward(y, cache)
        np.testing.assert_allclose(back, x, atol=1e-12)

    def test_position_zero_is_identity(self):
        g = rng(2)
        x = g.normal(size=(1, 1, 2, 4))
        cache = make_rope_cache(4, np.array([0]))
        np.testing.assert_allclose(rope_forward(x, cache), x)

    def test_offset_positions_differ_from_contiguous(self):
        """Chunked runs feed absolute offsets; rotation must depend on them."""
        g = rng(3)
        x = g.normal(size=(1, 4, 1, 4))
        y0 = rope_forward(x, make_rope_cache(4, np.arange(4)))
        y1 = rope_forward(x, make_rope_cache(4, np.arange(100, 104)))
        assert not np.allclose(y0, y1)

    def test_relative_position_property(self):
        """RoPE's defining property: <rot(q,m), rot(k,n)> depends only on m-n."""
        g = rng(4)
        q = g.normal(size=(1, 1, 1, 8))
        k = g.normal(size=(1, 1, 1, 8))
        def dot_at(m, n):
            qm = rope_forward(q, make_rope_cache(8, np.array([m])))
            kn = rope_forward(k, make_rope_cache(8, np.array([n])))
            return float((qm * kn).sum())
        assert dot_at(5, 3) == pytest.approx(dot_at(105, 103), rel=1e-9)

    def test_odd_head_dim_raises(self):
        with pytest.raises(ValueError):
            make_rope_cache(5, np.arange(3))


class TestHeadHelpers:
    def test_split_merge_roundtrip(self):
        g = rng(0)
        x = g.normal(size=(2, 3, 8))
        assert merge_heads(split_heads(x, 4)).shape == x.shape
        np.testing.assert_array_equal(merge_heads(split_heads(x, 4)), x)

    def test_split_indivisible_raises(self):
        with pytest.raises(ValueError):
            split_heads(np.zeros((1, 2, 7)), 2)

    def test_repeat_kv_layout(self):
        x = np.arange(8.0).reshape(1, 1, 2, 4)
        y = repeat_kv(x, 3)
        assert y.shape == (1, 1, 6, 4)
        np.testing.assert_array_equal(y[0, 0, 0], y[0, 0, 2])
        np.testing.assert_array_equal(y[0, 0, 3], y[0, 0, 5])

    def test_reduce_kv_grad_is_adjoint_of_repeat(self):
        g = rng(1)
        x = g.normal(size=(2, 3, 2, 4))
        dy = g.normal(size=(2, 3, 6, 4))
        # <repeat(x), dy> == <x, reduce(dy)>
        lhs = float((repeat_kv(x, 3) * dy).sum())
        rhs = float((x * reduce_kv_grad(dy, 3)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_group_size_one_is_identity(self):
        x = np.ones((1, 2, 3, 4))
        assert repeat_kv(x, 1) is x
        assert reduce_kv_grad(x, 1) is x
