"""Trace and cluster plumbing not covered elsewhere: filters, compute
hooks, topology-bound clusters, and the H100 spec additions."""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.common.units import GIB
from repro.hardware import (
    H100_80G,
    NDR_IB,
    NVLINK4,
    PCIE_GEN5_X16,
    make_cluster,
    node_h100_80g,
    paper_node_a100_80g,
)
from repro.runtime import Trace, VirtualCluster
from repro.runtime.trace_analysis import summarize


class TestTrace:
    def test_record_and_filter_by_kind(self):
        trace = Trace()
        trace.record("compute", "gemm", rank=0, flops=10.0)
        trace.record("h2d", "fetch", rank=1, nbytes=64)
        assert len(trace.filter(kind="compute")) == 1
        assert trace.filter(kind="h2d")[0].nbytes == 64

    def test_filter_by_rank_and_prefix(self):
        trace = Trace()
        trace.record("compute", "attn.fwd", rank=0)
        trace.record("compute", "attn.bwd", rank=1)
        trace.record("compute", "ffn.fwd", rank=1)
        assert len(trace.filter(rank=1)) == 2
        assert len(trace.filter(label_prefix="attn.")) == 2
        assert len(trace.filter(kind="compute", label_prefix="ffn", rank=1)) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Trace().record("teleport", "x")

    def test_totals_and_clear(self):
        trace = Trace()
        trace.record("compute", "a", flops=3.0)
        trace.record("compute", "b", flops=4.0)
        trace.record("d2h", "c", nbytes=8)
        assert trace.total_flops() == 7.0
        assert trace.total_bytes("d2h") == 8
        trace.clear()
        assert trace.events == []

    def test_event_ids_monotone(self):
        trace = Trace()
        e1 = trace.record("compute", "a")
        e2 = trace.record("compute", "b")
        assert e2.event_id == e1.event_id + 1

    def test_device_compute_hook(self):
        cluster = VirtualCluster(2)
        cluster.devices[1].compute("gemm", flops=123.0, stream="compute")
        events = cluster.trace.filter(kind="compute", rank=1)
        assert events[0].flops == 123.0


class TestTraceSummary:
    def test_comm_to_compute_ratio_compute_free_trace(self):
        """A trace with communication but zero compute cannot define
        bytes-per-FLOP — the ratio must refuse, not divide by zero."""
        trace = Trace()
        trace.record("collective", "all_to_all:qkv", nbytes=4096)
        trace.record("h2d", "fetch:k", rank=0, nbytes=128)
        summary = summarize(trace)
        assert summary.compute_flops == 0
        assert summary.total_collective_bytes == 4096
        with pytest.raises(ValueError, match="no compute"):
            summary.comm_to_compute_ratio()

    def test_empty_trace_summary(self):
        summary = summarize(Trace())
        assert summary.total_collective_bytes == 0
        assert summary.host_traffic_bytes == 0
        with pytest.raises(ValueError):
            summary.comm_to_compute_ratio()

    def test_wait_and_phase_interleaved_with_transfers(self):
        """wait/phase markers carry no bytes and must not perturb the
        transfer accounting they are interleaved with."""
        trace = Trace()
        trace.mark_phase("forward")
        trace.record("d2h", "offload:k0", rank=0, stream="d2h", nbytes=256)
        trace.record("h2d", "fetch:k0", rank=0, stream="h2d-prefetch", nbytes=256)
        trace.record("wait", "wait:k0", rank=0)
        trace.record("compute", "attn", rank=0, flops=1e6)
        trace.mark_phase("backward")
        trace.record("h2d", "fetch:k0", rank=0, stream="h2d-prefetch", nbytes=256)
        trace.record("wait", "wait:k0", rank=0)
        trace.record("collective", "all_to_all:grad", nbytes=512)
        summary = summarize(trace)
        assert summary.phases == ["forward", "backward"]
        assert summary.wait_count == 2
        assert summary.h2d_bytes == 512 and summary.h2d_count == 2
        assert summary.d2h_bytes == 256 and summary.d2h_count == 1
        assert summary.collective_bytes == {"all_to_all": 512}
        assert summary.collective_count == {"all_to_all": 1}
        assert summary.host_traffic_bytes == 768
        assert summary.comm_to_compute_ratio() == pytest.approx(512 / 1e6)

    def test_summarize_event_window_deltas(self):
        """start/end slicing gives exact per-step deltas on a growing
        trace (what the trainer's telemetry records use)."""
        trace = Trace()
        trace.record("collective", "all_to_all:a", nbytes=100)
        mark = len(trace.events)
        trace.record("collective", "all_to_all:b", nbytes=23)
        trace.record("h2d", "fetch:x", rank=0, nbytes=7)
        delta = summarize(trace, start=mark)
        assert delta.total_collective_bytes == 23
        assert delta.h2d_bytes == 7
        head = summarize(trace, start=0, end=mark)
        assert head.total_collective_bytes == 100
        assert head.h2d_count == 0


class TestClusterWithSpec:
    def test_spec_must_match_world_size(self):
        spec = make_cluster(paper_node_a100_80g(), 8)
        with pytest.raises(ValueError, match="world size"):
            VirtualCluster(4, spec=spec)

    def test_spec_attached(self):
        spec = make_cluster(paper_node_a100_80g(), 4)
        cluster = VirtualCluster(4, spec=spec)
        assert cluster.spec is spec

    def test_gather_wrong_count_raises(self):
        cluster = VirtualCluster(2)
        t = cluster.devices[0].from_numpy(np.zeros((1, 2)), DType.FP32, "x")
        with pytest.raises(ValueError):
            cluster.gather([t], axis=1)
        t.free()


class TestH100Specs:
    def test_h100_is_faster_and_same_hbm(self):
        assert H100_80G.peak_flops_bf16 > 3 * 312e12 * 0.9
        assert H100_80G.hbm_bytes == 80 * GIB

    def test_h100_node_links(self):
        node = node_h100_80g()
        assert node.nvlink is NVLINK4
        assert node.pcie is PCIE_GEN5_X16
        assert node.interconnect is NDR_IB
        assert node.pcie.bandwidth == 2 * 32e9

    def test_h100_compute_to_host_ratio_worse(self):
        """The ratio that moves the chunk sweet spot (hardware
        sensitivity study): FLOPs grew ~3.2x, host bandwidth only 2x."""
        a100 = paper_node_a100_80g()
        h100 = node_h100_80g()
        ratio_a = a100.gpu.peak_flops_bf16 / a100.pcie.bandwidth
        ratio_h = h100.gpu.peak_flops_bf16 / h100.pcie.bandwidth
        assert ratio_h > 1.4 * ratio_a
