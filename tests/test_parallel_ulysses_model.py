"""Model-level Ulysses runner: reference equivalence and trainer
interoperability."""

import numpy as np
import pytest

from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.models.loss import IGNORE_INDEX
from repro.parallel import UlyssesModelRunner
from repro.runtime import VirtualCluster
from repro.training import SyntheticCorpus
from repro.training.trainer import Trainer

from .helpers import rng

WORLD = 4


def _data(cfg, seed=0, b=1, s=32):
    g = rng(seed)
    tokens = g.integers(0, cfg.vocab_size, size=(b, s))
    labels = g.integers(0, cfg.vocab_size, size=(b, s))
    return tokens, labels


@pytest.mark.parametrize(
    "cfg_factory",
    [
        pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4, num_layers=2), id="gpt"),
        pytest.param(
            lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2),
            id="llama",
        ),
    ],
)
class TestUlyssesModelEquivalence:
    def test_loss_and_grads_match_reference(self, cfg_factory):
        cfg = cfg_factory()
        tokens, labels = _data(cfg)
        ref = GPTModel(cfg, seed=0)
        ref_loss = ref.forward_loss(tokens, labels)
        ref.backward_loss()
        ref_grads = ref.all_grads()

        model = GPTModel(cfg, seed=0)
        runner = UlyssesModelRunner(model, VirtualCluster(WORLD))
        loss, grads = runner.forward_backward(tokens, labels)
        assert loss == pytest.approx(ref_loss, rel=1e-10)
        for name in ref_grads:
            np.testing.assert_allclose(
                grads[name], ref_grads[name], rtol=1e-6, atol=1e-9, err_msg=name
            )

    def test_ignore_index(self, cfg_factory):
        cfg = cfg_factory()
        tokens, labels = _data(cfg, seed=1)
        labels[:, -7:] = IGNORE_INDEX
        ref = GPTModel(cfg, seed=1)
        ref_loss = ref.forward_loss(tokens, labels)
        model = GPTModel(cfg, seed=1)
        runner = UlyssesModelRunner(model, VirtualCluster(WORLD))
        loss, _ = runner.forward_backward(tokens, labels)
        assert loss == pytest.approx(ref_loss, rel=1e-10)


class TestUlyssesTrainer:
    def test_trainer_accepts_ulysses_runner(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        model = GPTModel(cfg, seed=3)
        corpus = SyntheticCorpus(32, branching=2, seed=3)
        runner = UlyssesModelRunner(model, VirtualCluster(WORLD))
        trainer = Trainer(model, corpus, runner=runner, lr=5e-3)
        losses = trainer.train(8, batch_size=2, seq_len=16).losses
        assert len(losses) == 8
        assert all(np.isfinite(losses))

    def test_ulysses_and_fpdt_trainers_identical(self):
        """The distributed baselines and FPDT all implement the same
        math: their training trajectories coincide step for step."""
        from repro.core import FPDTModelRunner

        curves = {}
        for mode in ("ulysses", "fpdt"):
            cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
            model = GPTModel(cfg, seed=9)
            corpus = SyntheticCorpus(32, branching=2, seed=9)
            if mode == "ulysses":
                runner = UlyssesModelRunner(model, VirtualCluster(WORLD))
            else:
                runner = FPDTModelRunner(
                    model, VirtualCluster(WORLD), num_chunks=2, loss_chunks=1
                )
            trainer = Trainer(model, corpus, runner=runner, lr=5e-3)
            curves[mode] = trainer.train(6, batch_size=2, seq_len=16).losses
        np.testing.assert_allclose(curves["fpdt"], curves["ulysses"], rtol=1e-9)

    def test_shape_validation(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        runner = UlyssesModelRunner(GPTModel(cfg), VirtualCluster(WORLD))
        with pytest.raises(Exception):
            runner.forward_backward(np.zeros((1, 30), int), np.zeros((1, 30), int))
