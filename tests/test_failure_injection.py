"""Failure injection: OOM and misuse must leave the runtime in a
consistent, diagnosable state — the error behavior a real training stack
needs (a CUDA OOM that corrupts the allocator is a lost job)."""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.common.errors import OutOfMemoryError, ScheduleError
from repro.core import ChunkLayout, fpdt_block_forward
from repro.core.chunking import shard_sequence
from repro.core.offload import ChunkCache
from repro.models import TransformerBlock, tiny_gpt
from repro.runtime import VirtualCluster
from repro.runtime.collectives import all_to_all

from .helpers import rng


class TestOOMConsistency:
    def test_oom_reports_requested_vs_available(self):
        cluster = VirtualCluster(2, hbm_capacity=100)
        cluster.devices[0].from_numpy(np.zeros(20, np.float32), DType.FP32, "a")
        with pytest.raises(OutOfMemoryError) as err:
            cluster.devices[0].from_numpy(np.zeros(10, np.float32), DType.FP32, "b")
        assert err.value.requested == 40
        assert err.value.in_use == 80
        assert err.value.capacity == 100

    def test_oom_does_not_corrupt_accounting(self):
        cluster = VirtualCluster(1, hbm_capacity=100)
        dev = cluster.devices[0]
        keep = dev.from_numpy(np.zeros(20, np.float32), DType.FP32, "keep")
        with pytest.raises(OutOfMemoryError):
            dev.from_numpy(np.zeros(100, np.float32), DType.FP32, "big")
        # The failed allocation charged nothing.
        assert dev.hbm.in_use == 80
        keep.free()
        dev.hbm.check_empty()

    def test_fpdt_oom_midway_raises_cleanly(self):
        """An FPDT forward on an undersized device OOMs with the standard
        error (the signal behind the paper's 'OOM' markers), and the live
        allocations at failure are inspectable for diagnosis."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block = TransformerBlock(cfg, rng(0))
        x = rng(1).normal(size=(1, 64, cfg.hidden_size))
        layout = ChunkLayout(64, 4, 2)
        cluster = VirtualCluster(4, hbm_capacity=2048)  # too small
        with pytest.raises(OutOfMemoryError):
            fpdt_block_forward(
                cluster, block.params, cfg, layout, shard_sequence(x, layout)
            )
        # Accounting still consistent: every live allocation is known.
        for dev in cluster.devices:
            live = sum(a.nbytes for a in dev.hbm.live_allocations())
            assert live == dev.hbm.in_use <= 2048

    def test_fpdt_succeeds_on_exactly_sufficient_device(self):
        """The same workload passes once capacity covers the measured
        peak — the capacity solver's premise, demonstrated numerically."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block = TransformerBlock(cfg, rng(0))
        x = rng(1).normal(size=(1, 64, cfg.hidden_size))
        layout = ChunkLayout(64, 4, 2)
        probe = VirtualCluster(4)
        _, ctx = fpdt_block_forward(
            probe, block.params, cfg, layout, shard_sequence(x, layout)
        )
        ctx.attn_ctx.release()
        peak = probe.peak_hbm()
        bounded = VirtualCluster(4, hbm_capacity=peak)
        _, ctx2 = fpdt_block_forward(
            bounded, block.params, cfg, layout, shard_sequence(x, layout)
        )
        ctx2.attn_ctx.release()
        bounded.check_no_leaks()

    def test_host_capacity_enforced(self):
        cluster = VirtualCluster(1, host_capacity=10)
        cache = ChunkCache(cluster)
        t = cluster.devices[0].from_numpy(np.zeros(8, np.float32), DType.FP32, "x")
        with pytest.raises(OutOfMemoryError):
            cache.store("x", t, cluster.devices[0])


class TestCollectiveFailures:
    def test_partial_rank_failure_leaves_inputs_live(self):
        """If validation rejects a collective, no input was freed —
        the caller can retry or clean up."""
        cluster = VirtualCluster(2)
        a = cluster.devices[0].from_numpy(np.zeros((2, 2)), DType.FP32, "a")
        b = cluster.devices[1].from_numpy(np.zeros((2, 3)), DType.FP32, "b")
        with pytest.raises(Exception):
            all_to_all(cluster, [a, b], split_axis=0, concat_axis=1)
        assert a.is_live and b.is_live
        a.free()
        b.free()
        cluster.check_no_leaks()


class TestScheduleFailures:
    def test_backward_with_released_context_fails_loudly(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block = TransformerBlock(cfg, rng(0))
        x = rng(1).normal(size=(1, 32, cfg.hidden_size))
        layout = ChunkLayout(32, 4, 2)
        cluster = VirtualCluster(4)
        _, ctx = fpdt_block_forward(
            cluster, block.params, cfg, layout, shard_sequence(x, layout)
        )
        ctx.attn_ctx.release()  # simulate premature cleanup
        from repro.core import fpdt_block_backward

        dy = shard_sequence(rng(2).normal(size=x.shape), layout)
        with pytest.raises((KeyError, ScheduleError, RuntimeError)):
            fpdt_block_backward(cluster, cfg, ctx, dy)
