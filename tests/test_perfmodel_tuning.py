"""Auto-tuner tests: chunk-size suggestion, strategy selection, and the
2D (ulysses x ring x chunk x offload) layout sweep."""

import dataclasses

import pytest

from repro.common.units import parse_tokens
from repro.hardware import paper_node_a100_40g, paper_node_a100_80g
from repro.models import GPT_2_7B, LLAMA_8B, LLAMA_70B
from repro.perfmodel import (
    autotune_layout,
    autotune_strategy,
    layout_candidates,
    suggest_chunk_tokens,
)

NODE80 = paper_node_a100_80g()
NODE40 = paper_node_a100_40g()


class TestSuggestChunkTokens:
    def test_sweet_spot_in_paper_window(self):
        """§5.3: the tuned chunk lands on the MFU plateau above the
        starving knee — 16K-128K around the paper's 64K default."""
        choice = suggest_chunk_tokens(LLAMA_8B, 4, parse_tokens("512K"), NODE80)
        assert choice is not None
        assert parse_tokens("16K") <= choice.chunk_tokens <= parse_tokens("128K")
        assert choice.mfu > 0.5

    def test_rejects_starving_chunks(self):
        """8K chunks are below the fetch/compute crossover: the tuner
        must not pick them (Fig. 8)."""
        choice = suggest_chunk_tokens(LLAMA_8B, 4, parse_tokens("512K"), NODE80)
        assert choice.chunk_tokens > parse_tokens("8K")
        small = choice.swept[parse_tokens("8K")]
        assert small.mfu < choice.mfu - 0.005

    def test_prefers_smallest_chunk_on_plateau(self):
        """Fig. 9: extra chunk length past the knee only costs HBM."""
        choice = suggest_chunk_tokens(LLAMA_8B, 4, parse_tokens("512K"), NODE80)
        for chunk, metrics in choice.swept.items():
            if metrics.fits and chunk < choice.chunk_tokens:
                assert metrics.mfu < choice.mfu - 0.005
        assert choice.metrics.memory.working_set <= min(
            m.memory.working_set
            for c, m in choice.swept.items()
            if m.fits and m.mfu >= choice.mfu - 0.005
        )

    def test_candidates_larger_than_sequence_skipped(self):
        choice = suggest_chunk_tokens(GPT_2_7B, 4, parse_tokens("32K"), NODE40)
        assert choice is not None
        assert choice.chunk_tokens <= parse_tokens("32K")

    def test_infeasible_returns_none(self):
        # 70B on 4x40G: model states cannot fit at any chunk size.
        assert suggest_chunk_tokens(LLAMA_70B, 4, parse_tokens("256K"), NODE40) is None

    def test_sweep_records_all_candidates(self):
        choice = suggest_chunk_tokens(GPT_2_7B, 4, parse_tokens("256K"), NODE40)
        assert len(choice.swept) >= 5

    def test_sequence_below_every_candidate_clamps_to_s_global(self):
        """A 4K sequence is shorter than the smallest 8K candidate: the
        sweep must clamp to a one-chunk pipeline, not return None."""
        s = parse_tokens("4K")
        choice = suggest_chunk_tokens(GPT_2_7B, 4, s, NODE40)
        assert choice is not None
        assert choice.chunk_tokens == s
        assert list(choice.swept) == [s]
        assert choice.metrics.fits


class TestAutotuneStrategy:
    def test_picks_fpdt_at_long_context(self):
        best = autotune_strategy(LLAMA_8B, 8, parse_tokens("1M"), NODE80)
        assert best is not None
        assert best.strategy.is_fpdt
        assert best.metrics.mfu > 0.5

    def test_returns_feasible_option_at_short_context(self):
        best = autotune_strategy(GPT_2_7B, 4, parse_tokens("64K"), NODE40)
        assert best is not None
        assert best.metrics.fits

    def test_nothing_fits_returns_none(self):
        assert autotune_strategy(LLAMA_70B, 4, parse_tokens("1M"), NODE40) is None

    def test_options_without_mfu_are_dropped(self, monkeypatch):
        """An option that fits but carries no MFU estimate cannot be
        ranked; the tuner must skip it, not crown it by accident."""
        import repro.perfmodel.tuning as tuning

        real = tuning.step_metrics

        def strip_ulysses_mfu(cfg, strat, *args, **kwargs):
            sm = real(cfg, strat, *args, **kwargs)
            if strat.parallelism == "ulysses":
                return dataclasses.replace(sm, step_time=None, mfu=None)
            return sm

        monkeypatch.setattr(tuning, "step_metrics", strip_ulysses_mfu)
        best = tuning.autotune_strategy(GPT_2_7B, 4, parse_tokens("64K"), NODE40)
        assert best is not None
        assert best.strategy.parallelism != "ulysses"
        assert best.metrics.mfu is not None

    def test_all_options_without_mfu_raise(self, monkeypatch):
        """Fitting options that *all* lack MFU is a modeling bug, not a
        capacity verdict: loud ValueError, not an arbitrary winner."""
        import repro.perfmodel.tuning as tuning

        real = tuning.step_metrics

        def strip_all_mfu(*args, **kwargs):
            sm = real(*args, **kwargs)
            return dataclasses.replace(sm, step_time=None, mfu=None)

        monkeypatch.setattr(tuning, "step_metrics", strip_all_mfu)
        with pytest.raises(ValueError, match="lack an MFU estimate"):
            tuning.autotune_strategy(GPT_2_7B, 4, parse_tokens("64K"), NODE40)


class TestLayoutCandidates:
    def test_head_count_filters_the_ulysses_axis(self):
        # world 8, 4 heads: ulysses degree 8 is impossible.
        assert layout_candidates(8, 4) == [(4, 2), (2, 4), (1, 8)]

    def test_ulysses_heavy_first(self):
        assert layout_candidates(8, 8) == [(8, 1), (4, 2), (2, 4), (1, 8)]

    def test_world_one(self):
        assert layout_candidates(1, 32) == [(1, 1)]


class TestAutotuneLayout:
    def test_table1_grid_points_all_feasible(self):
        """Every Table-1 hardware point for the 2.7B model yields a
        feasible layout at the paper's 128K anchor."""
        s = parse_tokens("128K")
        grid = [(NODE40, g) for g in (1, 2, 4, 8)] + [(NODE80, g) for g in (4, 8)]
        for node, world in grid:
            choice = autotune_layout(GPT_2_7B, world, s, node)
            assert choice is not None, (node, world)
            assert choice.metrics.fits
            assert choice.metrics.mfu is not None
            assert choice.ulysses_degree * choice.ring_degree == world

    def test_tie_breaking_is_deterministic(self):
        s = parse_tokens("128K")
        a = autotune_layout(GPT_2_7B, 4, s, NODE40)
        b = autotune_layout(GPT_2_7B, 4, s, NODE40)
        assert a.label == b.label
        assert a.strategy == b.strategy
        assert a.metrics == b.metrics

    def test_labels_name_the_mesh_or_chunk(self):
        s = parse_tokens("256K")
        choice = autotune_layout(LLAMA_8B, 4, s, NODE80)
        assert choice is not None
        if choice.chunk_tokens is None:
            assert choice.label == f"usp[{choice.ulysses_degree}x{choice.ring_degree}]"
        else:
            kind = "offload" if choice.offload else "chunked"
            assert choice.label == f"fpdt[{choice.chunk_tokens // 1024}K,{kind}]"

    def test_nothing_fits_returns_none(self):
        assert autotune_layout(LLAMA_70B, 4, parse_tokens("1M"), NODE40) is None

    def test_usp_points_are_swept(self, monkeypatch):
        """The sweep evaluates every head-compatible mesh factorization,
        not just the FPDT axis."""
        import repro.perfmodel.tuning as tuning

        seen = []
        real = tuning.step_metrics

        def spy(cfg, strat, *args, **kwargs):
            seen.append(strat)
            return real(cfg, strat, *args, **kwargs)

        monkeypatch.setattr(tuning, "step_metrics", spy)
        tuning.autotune_layout(GPT_2_7B, 4, parse_tokens("128K"), NODE40)
        usp_meshes = {
            (s.ulysses_degree, s.ring_degree)
            for s in seen
            if s.parallelism == "usp"
        }
        assert usp_meshes == {(4, 1), (2, 2), (1, 4)}
