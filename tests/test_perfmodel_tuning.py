"""Auto-tuner tests: chunk-size suggestion and strategy selection."""

import pytest

from repro.common.units import parse_tokens
from repro.hardware import paper_node_a100_40g, paper_node_a100_80g
from repro.models import GPT_2_7B, LLAMA_8B, LLAMA_70B
from repro.perfmodel import autotune_strategy, suggest_chunk_tokens

NODE80 = paper_node_a100_80g()
NODE40 = paper_node_a100_40g()


class TestSuggestChunkTokens:
    def test_sweet_spot_in_paper_window(self):
        """§5.3: the tuned chunk lands on the MFU plateau above the
        starving knee — 16K-128K around the paper's 64K default."""
        choice = suggest_chunk_tokens(LLAMA_8B, 4, parse_tokens("512K"), NODE80)
        assert choice is not None
        assert parse_tokens("16K") <= choice.chunk_tokens <= parse_tokens("128K")
        assert choice.mfu > 0.5

    def test_rejects_starving_chunks(self):
        """8K chunks are below the fetch/compute crossover: the tuner
        must not pick them (Fig. 8)."""
        choice = suggest_chunk_tokens(LLAMA_8B, 4, parse_tokens("512K"), NODE80)
        assert choice.chunk_tokens > parse_tokens("8K")
        small = choice.swept[parse_tokens("8K")]
        assert small.mfu < choice.mfu - 0.005

    def test_prefers_smallest_chunk_on_plateau(self):
        """Fig. 9: extra chunk length past the knee only costs HBM."""
        choice = suggest_chunk_tokens(LLAMA_8B, 4, parse_tokens("512K"), NODE80)
        for chunk, metrics in choice.swept.items():
            if metrics.fits and chunk < choice.chunk_tokens:
                assert metrics.mfu < choice.mfu - 0.005
        assert choice.metrics.memory.working_set <= min(
            m.memory.working_set
            for c, m in choice.swept.items()
            if m.fits and m.mfu >= choice.mfu - 0.005
        )

    def test_candidates_larger_than_sequence_skipped(self):
        choice = suggest_chunk_tokens(GPT_2_7B, 4, parse_tokens("32K"), NODE40)
        assert choice is not None
        assert choice.chunk_tokens <= parse_tokens("32K")

    def test_infeasible_returns_none(self):
        # 70B on 4x40G: model states cannot fit at any chunk size.
        assert suggest_chunk_tokens(LLAMA_70B, 4, parse_tokens("256K"), NODE40) is None

    def test_sweep_records_all_candidates(self):
        choice = suggest_chunk_tokens(GPT_2_7B, 4, parse_tokens("256K"), NODE40)
        assert len(choice.swept) >= 5


class TestAutotuneStrategy:
    def test_picks_fpdt_at_long_context(self):
        best = autotune_strategy(LLAMA_8B, 8, parse_tokens("1M"), NODE80)
        assert best is not None
        assert best.strategy.is_fpdt
        assert best.metrics.mfu > 0.5

    def test_returns_feasible_option_at_short_context(self):
        best = autotune_strategy(GPT_2_7B, 4, parse_tokens("64K"), NODE40)
        assert best is not None
        assert best.metrics.fits

    def test_nothing_fits_returns_none(self):
        assert autotune_strategy(LLAMA_70B, 4, parse_tokens("1M"), NODE40) is None
