"""FLOPs accounting and MFU tests."""

import pytest

from repro.hardware import A100_80G
from repro.models import GPT_2_7B, LLAMA_8B, tiny_gpt
from repro.perfmodel.flops import (
    attention_flops,
    layer_flops,
    lm_head_flops,
    linear_flops,
    mfu,
    model_flops_hardware,
    model_flops_reported,
    model_forward_flops,
)


class TestAttentionFlops:
    def test_quadratic_in_sequence(self):
        f1 = attention_flops(GPT_2_7B, 1024)
        f2 = attention_flops(GPT_2_7B, 2048)
        assert f2 == pytest.approx(4 * f1, rel=1e-2)

    def test_causal_halves(self):
        full = attention_flops(GPT_2_7B, 1024, causal=False)
        causal = attention_flops(GPT_2_7B, 1024, causal=True)
        assert causal == pytest.approx(full / 2, rel=1e-2)

    def test_formula_exact_triangle(self):
        cfg = tiny_gpt(hidden_size=64, num_heads=4)
        # causal: 4 * b * H * s(s+1)/2 key visits
        assert attention_flops(cfg, 10, batch=2) == pytest.approx(4 * 2 * 64 * 55)

    def test_window_linearizes_cost(self):
        """With window w << s, attention FLOPs grow linearly in s."""
        cfg = GPT_2_7B.scaled(attention_window=1024)
        f1 = attention_flops(cfg, 65536)
        f2 = attention_flops(cfg, 131072)
        assert f2 == pytest.approx(2 * f1, rel=0.02)

    def test_window_exact_count(self):
        cfg = tiny_gpt(hidden_size=64, num_heads=4).scaled(attention_window=3)
        # s=5, w=3: visits = 1+2+3+3+3 = 12
        assert attention_flops(cfg, 5) == pytest.approx(4 * 64 * 12)

    def test_huge_window_equals_causal(self):
        cfg = GPT_2_7B.scaled(attention_window=10**9)
        assert attention_flops(cfg, 4096) == attention_flops(GPT_2_7B, 4096)


class TestLinearAndModelFlops:
    def test_linear_flops_gpt(self):
        cfg = tiny_gpt(hidden_size=64, num_heads=4)
        h, f = 64, 256
        expect = 2 * 10 * (h * h + 2 * h * h + h * h + 2 * h * f)
        assert linear_flops(cfg, 10) == pytest.approx(expect)

    def test_llama_gqa_reduces_kv_proj(self):
        mha = LLAMA_8B.scaled(num_kv_heads=32)
        assert linear_flops(LLAMA_8B, 1024) < linear_flops(mha, 1024)

    def test_six_psi_rule_of_thumb(self):
        """At moderate s, train FLOPs/token ~ 6 * params (the standard
        approximation) — sanity check of overall magnitudes."""
        s = 2048
        per_token = model_flops_reported(GPT_2_7B, s) / s
        assert per_token == pytest.approx(6 * GPT_2_7B.num_params(), rel=0.35)

    def test_hardware_exceeds_reported_with_ac(self):
        assert model_flops_hardware(GPT_2_7B, 4096) == pytest.approx(
            4 / 3 * model_flops_reported(GPT_2_7B, 4096)
        )

    def test_lm_head(self):
        cfg = tiny_gpt(hidden_size=64, vocab_size=100, num_heads=4)
        assert lm_head_flops(cfg, 10) == 2 * 10 * 64 * 100

    def test_layer_flops_additive(self):
        assert layer_flops(GPT_2_7B, 512) == pytest.approx(
            attention_flops(GPT_2_7B, 512) + linear_flops(GPT_2_7B, 512)
        )

    def test_model_flops_scale_with_layers(self):
        small = tiny_gpt(num_layers=2)
        big = tiny_gpt(num_layers=4)
        f_small = model_forward_flops(small, 64) - lm_head_flops(small, 64)
        f_big = model_forward_flops(big, 64) - lm_head_flops(big, 64)
        assert f_big == pytest.approx(2 * f_small)


class TestMFU:
    def test_definition(self):
        t = 10.0
        got = mfu(GPT_2_7B, 65536, t, 4, A100_80G)
        expect = model_flops_reported(GPT_2_7B, 65536) / (t * 4 * 312e12)
        assert got == pytest.approx(expect)

    def test_positive_time_required(self):
        with pytest.raises(ValueError):
            mfu(GPT_2_7B, 1024, 0.0, 1, A100_80G)

    def test_mfu_below_one_for_sane_times(self):
        # A step cannot beat the hardware peak.
        flops = model_flops_reported(GPT_2_7B, 65536)
        t_min = flops / (4 * 312e12)
        assert mfu(GPT_2_7B, 65536, t_min * 2, 4, A100_80G) == pytest.approx(0.5)
