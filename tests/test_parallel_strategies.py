"""Strategy equivalence: Ulysses, Megatron-SP and Ring Attention must
reproduce the single-device reference block bit-for-bit-close — outputs,
input gradients, and parameter gradients."""

import numpy as np
import pytest

from repro.models import TransformerBlock, tiny_gpt, tiny_llama
from repro.parallel import (
    megatron_block_backward,
    megatron_block_forward,
    ring_block_backward,
    ring_block_forward,
    ulysses_block_backward,
    ulysses_block_forward,
)
from repro.runtime import VirtualCluster

from .helpers import rng

WORLD = 4
TOL = dict(rtol=1e-8, atol=1e-10)


def _make_case(cfg, seed=0, b=2, s_local=4):
    s_global = s_local * WORLD
    block = TransformerBlock(cfg, rng(seed))
    g = rng(seed + 1)
    x = g.normal(size=(b, s_global, cfg.hidden_size))
    dy = g.normal(size=(b, s_global, cfg.hidden_size))
    y_ref = block.forward(x)
    dx_ref = block.backward(dy)
    x_shards = np.split(x, WORLD, axis=1)
    dy_shards = np.split(dy, WORLD, axis=1)
    return block, x, dy, y_ref, dx_ref, x_shards, dy_shards


def _check(cluster, block, y_ref, dx_ref, y_shards, dx_shards, grads):
    np.testing.assert_allclose(np.concatenate(y_shards, axis=1), y_ref, **TOL)
    np.testing.assert_allclose(np.concatenate(dx_shards, axis=1), dx_ref, **TOL)
    assert set(grads) == set(block.grads)
    for name in grads:
        np.testing.assert_allclose(
            grads[name], block.grads[name], rtol=1e-7, atol=1e-9, err_msg=name
        )
    cluster.check_no_leaks()


CONFIGS = [
    pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4), id="gpt"),
    pytest.param(lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=4), id="llama-mha"),
    pytest.param(lambda: tiny_llama(hidden_size=64, num_heads=8, num_kv_heads=4), id="llama-gqa"),
]


class TestUlysses:
    @pytest.mark.parametrize("cfg_factory", CONFIGS)
    def test_block_equivalence(self, cfg_factory):
        cfg = cfg_factory()
        block, x, dy, y_ref, dx_ref, x_shards, dy_shards = _make_case(cfg)
        cluster = VirtualCluster(WORLD)
        y_shards_d, ctx = ulysses_block_forward(cluster, block.params, cfg, x_shards)
        dx_shards_d, grads = ulysses_block_backward(cluster, cfg, ctx, dy_shards)
        _check(cluster, block, y_ref, dx_ref, y_shards_d, dx_shards_d, grads)

    def test_blockwise_attention_inside_ulysses(self):
        """block_k chunking inside the Ulysses attention core must not
        change results (the knob FPDT later drives)."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, y_ref, dx_ref, x_shards, dy_shards = _make_case(cfg, seed=3)
        cluster = VirtualCluster(WORLD)
        y_shards_d, ctx = ulysses_block_forward(
            cluster, block.params, cfg, x_shards, block_k=3
        )
        dx_shards_d, grads = ulysses_block_backward(
            cluster, cfg, ctx, dy_shards, block_k=5
        )
        _check(cluster, block, y_ref, dx_ref, y_shards_d, dx_shards_d, grads)

    def test_head_divisibility_enforced(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=2)  # 2 heads, 4 ranks
        cluster = VirtualCluster(WORLD)
        block = TransformerBlock(cfg, rng(0))
        shards = [np.zeros((1, 2, 32))] * WORLD
        with pytest.raises(ValueError, match="divisible"):
            ulysses_block_forward(cluster, block.params, cfg, shards)

    def test_all_to_all_count_per_block(self):
        """Ulysses issues exactly 3 forward all-to-alls (q, k, v) + 1 for
        the output, and 1 + 3 in the backward."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, *_, x_shards, dy_shards = _make_case(cfg, seed=4)
        cluster = VirtualCluster(WORLD)
        _, ctx = ulysses_block_forward(cluster, block.params, cfg, x_shards)
        fwd_count = len(cluster.trace.filter(kind="collective"))
        assert fwd_count == 4
        ulysses_block_backward(cluster, cfg, ctx, dy_shards)
        assert len(cluster.trace.filter(kind="collective")) == 8

    def test_peak_hbm_includes_gathered_sequence(self):
        """During attention each rank holds q,k,v for the *full* sequence
        (local heads) — the working set FPDT later chunks away."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, *_, x_shards, dy_shards = _make_case(cfg, s_local=8)
        cluster = VirtualCluster(WORLD)
        ulysses_block_forward(cluster, block.params, cfg, x_shards)
        b, s_global, H = 2, 8 * WORLD, 32
        gathered_qkv_bytes = 3 * b * s_global * (H // WORLD) * 2  # bf16
        assert cluster.peak_hbm() >= gathered_qkv_bytes


class TestMegatronSP:
    @pytest.mark.parametrize("cfg_factory", CONFIGS)
    def test_block_equivalence(self, cfg_factory):
        cfg = cfg_factory()
        block, x, dy, y_ref, dx_ref, x_shards, dy_shards = _make_case(cfg, seed=1)
        cluster = VirtualCluster(WORLD)
        y_shards_d, ctx = megatron_block_forward(cluster, block.params, cfg, x_shards)
        dx_shards_d, grads = megatron_block_backward(
            cluster, block.params, cfg, ctx, dy_shards
        )
        _check(cluster, block, y_ref, dx_ref, y_shards_d, dx_shards_d, grads)

    def test_divisibility_enforced(self):
        cfg = tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2)  # kv=2 < 4 ranks
        cluster = VirtualCluster(WORLD)
        block = TransformerBlock(cfg, rng(0))
        with pytest.raises(ValueError, match="divisible"):
            megatron_block_forward(cluster, block.params, cfg, [np.zeros((1, 2, 32))] * WORLD)

    def test_gathered_activation_does_not_shrink_with_ranks(self):
        """Megatron-SP's defining memory property (§2.2): the all-gathered
        normed sequence is [b, s_global, H] on every rank, independent of
        world size — unlike Ulysses, whose gathered tensor shrinks by P."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, *_, x_shards, _ = _make_case(cfg, s_local=8)
        cluster = VirtualCluster(WORLD)
        megatron_block_forward(cluster, block.params, cfg, x_shards)
        b, s_global, H = 2, 8 * WORLD, 32
        full_normed_bytes = b * s_global * H * 2  # bf16, per rank
        assert cluster.peak_hbm() >= full_normed_bytes


class TestRingAttention:
    @pytest.mark.parametrize("cfg_factory", CONFIGS)
    def test_block_equivalence(self, cfg_factory):
        cfg = cfg_factory()
        block, x, dy, y_ref, dx_ref, x_shards, dy_shards = _make_case(cfg, seed=2)
        cluster = VirtualCluster(WORLD)
        y_shards_d, ctx = ring_block_forward(cluster, block.params, cfg, x_shards)
        dx_shards_d, grads = ring_block_backward(cluster, cfg, ctx, dy_shards)
        _check(cluster, block, y_ref, dx_ref, y_shards_d, dx_shards_d, grads)

    def test_ring_steps_count(self):
        """Forward rotates KV world-1 times (2 collectives each); the
        backward rotates (k, v, dk, dv) world times (4 each)."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, *_, x_shards, dy_shards = _make_case(cfg, seed=5)
        cluster = VirtualCluster(WORLD)
        _, ctx = ring_block_forward(cluster, block.params, cfg, x_shards)
        assert len(cluster.trace.filter(kind="collective")) == 2 * (WORLD - 1)
        ring_block_backward(cluster, cfg, ctx, dy_shards)
        total = len(cluster.trace.filter(kind="collective"))
        assert total == 2 * (WORLD - 1) + 4 * WORLD

    def test_kv_never_gathered(self):
        """Ring never materializes the full sequence: peak HBM stays well
        below one full-sequence KV tensor."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, *_, x_shards, _ = _make_case(cfg, s_local=8)
        cluster = VirtualCluster(WORLD)
        ring_block_forward(cluster, block.params, cfg, x_shards)
        b, s_global, H = 2, 8 * WORLD, 32
        full_kv = 2 * b * s_global * H * 2
        assert cluster.peak_hbm() < full_kv


class TestCrossStrategyAgreement:
    def test_all_three_strategies_agree_with_each_other(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, y_ref, dx_ref, x_shards, dy_shards = _make_case(cfg, seed=9)
        outs = {}
        for name, fwd, bwd in [
            ("ulysses", ulysses_block_forward, ulysses_block_backward),
            ("ring", ring_block_forward, ring_block_backward),
        ]:
            cluster = VirtualCluster(WORLD)
            y_s, ctx = fwd(cluster, block.params, cfg, x_shards)
            dx_s, grads = bwd(cluster, cfg, ctx, dy_shards)
            outs[name] = (np.concatenate(y_s, axis=1), np.concatenate(dx_s, axis=1))
        cluster = VirtualCluster(WORLD)
        y_s, ctx = megatron_block_forward(cluster, block.params, cfg, x_shards)
        dx_s, _ = megatron_block_backward(cluster, block.params, cfg, ctx, dy_shards)
        outs["megatron"] = (np.concatenate(y_s, axis=1), np.concatenate(dx_s, axis=1))
        for name, (y, dx) in outs.items():
            np.testing.assert_allclose(y, y_ref, rtol=1e-8, atol=1e-10, err_msg=name)
            np.testing.assert_allclose(dx, dx_ref, rtol=1e-7, atol=1e-9, err_msg=name)
