"""Packed-document corpus: packing invariants and distributed-runner
agreement with realistic (masked) data."""

import numpy as np
import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt
from repro.models.loss import IGNORE_INDEX
from repro.runtime import VirtualCluster
from repro.training.data import PackedDocumentCorpus, make_packed_batch


class TestPackedDocumentCorpus:
    def test_documents_have_no_eos_inside(self):
        corpus = PackedDocumentCorpus(32, seed=0)
        for _ in range(10):
            doc = corpus.sample_document()
            assert (doc != corpus.EOS).all()
            assert (doc >= 1).all() and (doc < 32).all()

    def test_document_lengths_in_range(self):
        corpus = PackedDocumentCorpus(32, doc_len_low=5, doc_len_high=9, seed=1)
        lengths = [len(corpus.sample_document()) for _ in range(30)]
        assert min(lengths) >= 5 and max(lengths) <= 9

    def test_packed_length_exact(self):
        corpus = PackedDocumentCorpus(32, seed=2)
        assert corpus.sample_packed(64).shape == (65,)

    def test_packed_contains_separators(self):
        corpus = PackedDocumentCorpus(32, doc_len_low=4, doc_len_high=8, seed=3)
        stream = corpus.sample_packed(128)
        assert (stream == corpus.EOS).sum() >= 128 // 9 - 1

    def test_batch_masks_cross_document_labels(self):
        corpus = PackedDocumentCorpus(32, doc_len_low=4, doc_len_high=8, seed=4)
        tokens, labels = make_packed_batch(corpus, 2, 64)
        assert tokens.shape == labels.shape == (2, 64)
        # Every EOS input position is masked; every other is not.
        np.testing.assert_array_equal(
            labels == IGNORE_INDEX, tokens == corpus.EOS
        )
        assert (labels == IGNORE_INDEX).any()

    def test_deterministic(self):
        a = PackedDocumentCorpus(32, seed=5).sample_packed(32)
        b = PackedDocumentCorpus(32, seed=5).sample_packed(32)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            PackedDocumentCorpus(2)
        with pytest.raises(ValueError):
            PackedDocumentCorpus(32, doc_len_low=0)
        with pytest.raises(ValueError):
            PackedDocumentCorpus(32, doc_len_low=9, doc_len_high=5)


class TestPackedDataThroughRunners:
    def test_fpdt_matches_reference_on_packed_batch(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        corpus = PackedDocumentCorpus(32, doc_len_low=4, doc_len_high=10, seed=6)
        tokens, labels = make_packed_batch(corpus, 1, 32)
        ref = GPTModel(cfg, seed=0)
        ref_loss = ref.forward_loss(tokens, labels)
        ref.backward_loss()
        model = GPTModel(cfg, seed=0)
        runner = FPDTModelRunner(model, VirtualCluster(4), num_chunks=2, loss_chunks=2)
        loss, grads = runner.forward_backward(tokens, labels)
        assert loss == pytest.approx(ref_loss, rel=1e-10)
        np.testing.assert_allclose(
            grads["embed.table"], ref.all_grads()["embed.table"], rtol=1e-6, atol=1e-9
        )
