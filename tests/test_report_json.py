"""JSON export of experiment results."""

import json

import numpy as np
import pytest

from repro.experiments.report import ExperimentResult, save_json


class TestSaveJson:
    def _result(self):
        r = ExperimentResult("Table X", "demo", columns=["a", "b"])
        r.add_row("1", "2")
        r.note("a note")
        r.data["array"] = np.arange(3)
        r.data["scalar"] = np.float64(1.5)
        r.data["tuple_key"] = {(1, 2): "v"}
        r.data["nested"] = {"xs": [np.int64(7), None, True]}
        return r

    def test_roundtrip_readable(self, tmp_path):
        path = save_json(self._result(), tmp_path)
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "Table X"
        assert payload["rows"] == [["1", "2"]]
        assert payload["data"]["array"] == [0, 1, 2]
        assert payload["data"]["scalar"] == 1.5
        assert payload["data"]["tuple_key"] == {"(1, 2)": "v"}
        assert payload["data"]["nested"]["xs"] == [7, None, True]

    def test_filename_slug(self, tmp_path):
        path = save_json(self._result(), tmp_path)
        assert path.name == "tablex.json"

    def test_directory_created(self, tmp_path):
        nested = tmp_path / "a" / "b"
        path = save_json(self._result(), nested)
        assert path.exists()

    def test_cli_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["experiment", "table2", "--fast", "--json", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "data written" in out
        assert (tmp_path / "table2.json").exists()
