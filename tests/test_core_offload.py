"""Tests for the host chunk cache and the double-buffer prefetcher."""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.common.errors import ScheduleError
from repro.core.double_buffer import DoubleBufferPrefetcher
from repro.core.offload import ChunkCache
from repro.runtime import VirtualCluster


def _setup():
    cluster = VirtualCluster(2)
    cache = ChunkCache(cluster)
    dev = cluster.devices[0]
    return cluster, cache, dev


class TestChunkCache:
    def test_store_moves_bytes_to_host(self):
        cluster, cache, dev = _setup()
        t = dev.from_numpy(np.ones((4, 4), np.float32), DType.BF16, "kv")
        cache.store(("k", 0, 0), t, dev)
        assert dev.hbm.in_use == 0
        assert cluster.host.pool.in_use == 32
        assert cache.host_bytes == 32

    def test_fetch_is_a_copy_host_retained(self):
        cluster, cache, dev = _setup()
        t = dev.from_numpy(np.full((2, 2), 7.0, np.float32), DType.BF16, "kv")
        cache.store("x", t, dev)
        fetched = cache.fetch("x", dev)
        assert cluster.host.pool.in_use == 8  # host copy still there
        assert dev.hbm.in_use == 8
        np.testing.assert_array_equal(fetched.data, np.full((2, 2), 7.0))
        fetched.free()
        # A second fetch must still work.
        cache.fetch("x", dev).free()

    def test_traffic_recorded(self):
        cluster, cache, dev = _setup()
        t = dev.from_numpy(np.ones((2, 2), np.float32), DType.BF16, "kv")
        cache.store("x", t, dev)
        cache.fetch("x", dev).free()
        cache.fetch("x", dev).free()
        assert cluster.trace.total_bytes("d2h") == 8
        assert cluster.trace.total_bytes("h2d") == 16

    def test_duplicate_key_raises(self):
        cluster, cache, dev = _setup()
        t1 = dev.from_numpy(np.ones(2, np.float32), DType.FP32, "a")
        cache.store("x", t1, dev)
        t2 = dev.from_numpy(np.ones(2, np.float32), DType.FP32, "b")
        with pytest.raises(KeyError):
            cache.store("x", t2, dev)
        t2.free()

    def test_missing_key_raises(self):
        _, cache, dev = _setup()
        with pytest.raises(KeyError, match="no entry"):
            cache.fetch("nope", dev)

    def test_fetch_after_discard_raises(self):
        """A discarded entry is gone for good: fetch and re-discard both
        fail loudly instead of returning stale data."""
        _, cache, dev = _setup()
        t = dev.from_numpy(np.ones((2, 2), np.float32), DType.BF16, "kv")
        cache.store("x", t, dev)
        cache.discard("x")
        with pytest.raises(KeyError, match="no entry"):
            cache.fetch("x", dev)
        with pytest.raises(KeyError, match="no entry"):
            cache.discard("x")
        # The key is reusable after a discard (new request generation).
        t2 = dev.from_numpy(np.zeros((2, 2), np.float32), DType.BF16, "kv")
        cache.store("x", t2, dev)
        cache.fetch("x", dev).free()

    def test_discard_releases_host_bytes(self):
        cluster, cache, dev = _setup()
        t = dev.from_numpy(np.ones((2, 2), np.float32), DType.BF16, "kv")
        cache.store("x", t, dev)
        cache.discard("x")
        assert cluster.host.pool.in_use == 0
        assert "x" not in cache

    def test_put_host_and_clear(self):
        cluster, cache, _ = _setup()
        cache.put_host("a", np.zeros((4,)), DType.FP32)
        cache.put_host("b", np.zeros((4,)), DType.FP32)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cluster.host.pool.in_use == 0

    def test_update_host_shape_check(self):
        _, cache, _ = _setup()
        cache.put_host("a", np.zeros((4,)), DType.FP32)
        with pytest.raises(ValueError):
            cache.update_host("a", np.zeros((5,)))
        cache.update_host("a", np.ones((4,)))
        np.testing.assert_array_equal(cache.peek("a"), np.ones(4))

    def test_update_host_dtype_check(self):
        """A wider array silently swapped in would leave the host pool
        understating usage — must be rejected, not absorbed."""
        _, cache, _ = _setup()
        cache.put_host("a", np.zeros((4,), np.float32), DType.FP32)
        with pytest.raises(ValueError, match="dtype mismatch"):
            cache.update_host("a", np.zeros((4,), np.float64))
        cache.update_host("a", np.ones((4,), np.float32))
        np.testing.assert_array_equal(cache.peek("a"), np.ones(4, np.float32))


class TestDoubleBufferPrefetcher:
    def _cache_with(self, cluster, dev, keys):
        cache = ChunkCache(cluster)
        for i, key in enumerate(keys):
            t = dev.from_numpy(np.full((2,), float(i), np.float32), DType.FP32, str(key))
            cache.store(key, t, dev)
        return cache

    def test_prefetch_then_wait_delivers_data(self):
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        cache = self._cache_with(cluster, dev, ["a", "b"])
        pf = DoubleBufferPrefetcher(cache, dev, depth=2)
        pf.prefetch("a")
        pf.prefetch("b")
        ta = pf.wait("a")
        np.testing.assert_array_equal(ta.data, [0.0, 0.0])
        ta.free()
        pf.wait("b").free()

    def test_wait_without_prefetch_is_schedule_error(self):
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        cache = self._cache_with(cluster, dev, ["a"])
        pf = DoubleBufferPrefetcher(cache, dev)
        with pytest.raises(ScheduleError, match="never prefetched"):
            pf.wait("a")

    def test_overfilling_buffers_is_schedule_error(self):
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        cache = self._cache_with(cluster, dev, ["a", "b", "c"])
        pf = DoubleBufferPrefetcher(cache, dev, depth=2)
        pf.prefetch("a")
        pf.prefetch("b")
        with pytest.raises(ScheduleError, match="full"):
            pf.prefetch("c")
        pf.drain()

    def test_duplicate_prefetch_is_schedule_error(self):
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        cache = self._cache_with(cluster, dev, ["a"])
        pf = DoubleBufferPrefetcher(cache, dev)
        pf.prefetch("a")
        with pytest.raises(ScheduleError, match="in flight"):
            pf.prefetch("a")
        pf.drain()

    def test_prefetch_stream_tagged_for_overlap(self):
        """Prefetch H2D events carry the dedicated stream label the
        performance model schedules concurrently with compute."""
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        cache = self._cache_with(cluster, dev, ["a"])
        pf = DoubleBufferPrefetcher(cache, dev)
        pf.prefetch("a")
        pf.wait("a").free()
        events = [e for e in cluster.trace.events if e.kind == "h2d"]
        assert events[-1].stream == "h2d-prefetch"

    def test_depth_validation(self):
        cluster = VirtualCluster(1)
        with pytest.raises(ValueError):
            DoubleBufferPrefetcher(ChunkCache(cluster), cluster.devices[0], depth=0)

    def test_drain_frees_inflight(self):
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        cache = self._cache_with(cluster, dev, ["a", "b"])
        pf = DoubleBufferPrefetcher(cache, dev, depth=2)
        pf.prefetch("a")
        pf.prefetch("b")
        pf.drain()
        assert pf.in_flight == 0
        cache.clear()
        cluster.check_no_leaks()
