"""Unit tests for repro.common.units."""

import pytest

from repro.common.units import (
    GIB,
    K_TOKENS,
    M_TOKENS,
    format_bytes,
    format_count,
    format_tokens,
    parse_tokens,
)


class TestParseTokens:
    def test_plain_integer_string(self):
        assert parse_tokens("4096") == 4096

    def test_k_suffix_is_binary(self):
        assert parse_tokens("256K") == 256 * 1024

    def test_m_suffix_is_binary(self):
        assert parse_tokens("2M") == 2 * 1024 * 1024

    def test_lowercase_suffixes(self):
        assert parse_tokens("64k") == 64 * K_TOKENS
        assert parse_tokens("1m") == M_TOKENS

    def test_int_passthrough(self):
        assert parse_tokens(12345) == 12345

    def test_fractional_resolving_to_integer(self):
        assert parse_tokens("0.5M") == 512 * 1024

    def test_fractional_not_integer_raises(self):
        with pytest.raises(ValueError):
            parse_tokens("0.3K")

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_tokens("12G")

    def test_roundtrip_with_format(self):
        for text in ["128K", "256K", "512K", "1M", "2M", "4M", "8M"]:
            assert format_tokens(parse_tokens(text)) == text


class TestFormatters:
    def test_format_tokens_non_multiple(self):
        assert format_tokens(1000) == "1000"

    def test_format_bytes_gib(self):
        assert format_bytes(68 * GIB) == "68.0G"

    def test_format_bytes_small(self):
        assert format_bytes(512) == "512B"

    def test_format_bytes_decimal(self):
        assert format_bytes(32e9, binary=False) == "32.0GB"

    def test_format_count_billions(self):
        assert format_count(2.7e9) == "2.7B"

    def test_format_count_teraflops(self):
        assert format_count(312e12) == "312T"
