"""Capacity-solver tests: the paper's headline capacity claims as
executable assertions."""

import pytest

from repro.common.units import parse_tokens
from repro.hardware import paper_node_a100_40g, paper_node_a100_80g
from repro.models import GPT_2_7B, GPT_13B, GPT_30B, LLAMA_8B, LLAMA_70B
from repro.perfmodel import (
    FPDT_CHUNKED,
    FPDT_FULL,
    MEGATRON_SP,
    ULYSSES,
    max_context_length,
    step_metrics,
)
from repro.perfmodel.strategies import TrainingStrategy

NODE80 = paper_node_a100_80g()
NODE40 = paper_node_a100_40g()


class TestHeadlineClaims:
    def test_8b_on_4_gpus_reaches_2m(self):
        """Abstract: 'train 8B LLM with 2 million sequence length on only
        4 GPUs'."""
        m = max_context_length(LLAMA_8B, FPDT_FULL, 4, NODE80)
        assert m is not None and m >= parse_tokens("2M")

    def test_70b_on_32_gpus_reaches_4m(self):
        m = max_context_length(LLAMA_70B, FPDT_FULL, 32, NODE80)
        assert m is not None and m >= parse_tokens("4M")

    def test_fpdt_vs_baselines_8x_to_16x(self):
        """The 8-16x maximum-length multiplier over Megatron-SP/Ulysses
        (Fig. 11, abstract)."""
        m_fp = max_context_length(LLAMA_8B, FPDT_FULL, 8, NODE80)
        m_ul = max_context_length(LLAMA_8B, ULYSSES, 8, NODE80)
        m_mp = max_context_length(LLAMA_8B, MEGATRON_SP, 8, NODE80)
        assert m_fp >= 6 * m_ul
        assert m_fp >= 6 * m_mp

    def test_offload_extends_beyond_chunking_alone(self):
        """Fig. 11's 6.7B story: chunking alone OOMs where the offloaded
        variant keeps going."""
        m_chunk = max_context_length(LLAMA_8B, FPDT_CHUNKED, 4, NODE80)
        m_full = max_context_length(LLAMA_8B, FPDT_FULL, 4, NODE80)
        assert m_full > m_chunk

    def test_model_too_big_returns_none(self):
        """Table 1's '-' cells: the model states alone exceed the HBM."""
        assert max_context_length(LLAMA_70B, ULYSSES, 4, NODE40) is None

    def test_mfu_above_half_at_4m(self):
        sm = step_metrics(LLAMA_8B, FPDT_FULL, parse_tokens("4M"), 8, NODE80)
        assert sm.fits and sm.mfu > 0.5

    def test_mfu_monotone_story(self):
        """Fig. 1/11 ordering at the baselines' max length: FPDT >= Ulysses
        > Megatron-SP in MFU."""
        s = parse_tokens("512K")
        mfu = {
            name: step_metrics(LLAMA_8B, strat, s, 8, NODE80).mfu
            for name, strat in [
                ("mp", MEGATRON_SP), ("ul", ULYSSES), ("fp", FPDT_FULL),
            ]
        }
        assert mfu["fp"] > mfu["ul"] > mfu["mp"]


class TestTable1Grid:
    """Model-vs-paper on Table 1 cells: exact where the model and paper
    agree to the granularity, bounded ratio elsewhere (see
    EXPERIMENTS.md for the full residual table)."""

    @pytest.mark.parametrize(
        "cfg,gpus,node,paper,max_ratio",
        [
            (GPT_2_7B, 4, NODE40, "2M", 1.5),
            (GPT_2_7B, 8, NODE40, "4M", 1.5),
            (GPT_2_7B, 4, NODE80, "4M", 1.5),
            (LLAMA_8B, 4, NODE80, "2M", 1.5),
            (LLAMA_8B, 8, NODE80, "4M", 1.5),
            (GPT_13B, 8, NODE80, "3M", 1.6),
            (GPT_30B, 8, NODE80, "1M", 2.5),
            (LLAMA_70B, 16, NODE80, "1M", 2.5),
            (LLAMA_70B, 32, NODE80, "4M", 1.6),
        ],
        ids=lambda v: str(v),
    )
    def test_fpdt_cells_within_band(self, cfg, gpus, node, paper, max_ratio):
        m = max_context_length(cfg, FPDT_FULL, gpus, node)
        expect = parse_tokens(paper)
        assert m is not None
        assert expect / 1.3 <= m <= expect * max_ratio

    def test_capacity_monotone_in_gpus(self):
        lengths = [
            max_context_length(GPT_2_7B, FPDT_FULL, g, NODE40) for g in (1, 2, 4, 8)
        ]
        assert all(a < b for a, b in zip(lengths, lengths[1:]))

    def test_capacity_monotone_in_hbm(self):
        m40 = max_context_length(LLAMA_8B, FPDT_FULL, 8, NODE40)
        m80 = max_context_length(LLAMA_8B, FPDT_FULL, 8, NODE80)
        assert m80 > m40


class TestTable3Anchors:
    def test_baseline_max_lengths_within_one_grid_step(self):
        for strat in (MEGATRON_SP, ULYSSES):
            m = max_context_length(LLAMA_8B, strat, 8, NODE80)
            assert parse_tokens("512K") <= m <= parse_tokens("768K")

    def test_zero_stage_frees_memory(self):
        """Table 3: Z1 -> Z2 -> Z3 monotonically reduces HBM for Ulysses."""
        totals = []
        for stage in (1, 2, 3):
            strat = TrainingStrategy(
                name=f"ul-z{stage}", parallelism="ulysses", zero_stage=stage,
            )
            sm = step_metrics(LLAMA_8B, strat, parse_tokens("256K"), 8, NODE80)
            totals.append(sm.memory.device_total)
        assert totals[0] > totals[1] > totals[2]

    def test_fpdt_row_matches(self):
        m = max_context_length(LLAMA_8B, FPDT_FULL, 8, NODE80)
        assert parse_tokens("4M") <= m <= parse_tokens("6M")
        sm = step_metrics(LLAMA_8B, FPDT_FULL, parse_tokens("4M"), 8, NODE80)
        assert sm.mfu == pytest.approx(0.557, abs=0.08)


class TestStrategyValidation:
    def test_bad_parallelism(self):
        with pytest.raises(ValueError):
            TrainingStrategy(name="x", parallelism="pipeline")

    def test_chunk_tokens_only_for_fpdt(self):
        with pytest.raises(ValueError):
            TrainingStrategy(name="x", parallelism="ulysses", chunk_tokens=1024)

    def test_fpdt_requires_chunk_tokens(self):
        with pytest.raises(ValueError):
            TrainingStrategy(name="x", parallelism="fpdt")

    def test_offload_only_for_fpdt(self):
        with pytest.raises(ValueError):
            TrainingStrategy(name="x", parallelism="tp", offload=True)

    def test_num_chunks(self):
        assert FPDT_FULL.num_chunks(parse_tokens("4M")) == 64
        assert FPDT_FULL.num_chunks(parse_tokens("32K")) == 1
        with pytest.raises(ValueError):
            ULYSSES.num_chunks(1024)

    def test_with_chunk_tokens(self):
        s = FPDT_FULL.with_chunk_tokens("32K")
        assert s.chunk_tokens == parse_tokens("32K")


class TestBatchScaling:
    def test_larger_batch_reduces_max_context(self):
        """Activation terms scale with batch, so batch=2 roughly halves
        the sequence budget (the paper fixes batch=1 to maximize length)."""
        b1 = max_context_length(LLAMA_8B, FPDT_FULL, 8, NODE80, batch=1)
        b2 = max_context_length(LLAMA_8B, FPDT_FULL, 8, NODE80, batch=2)
        assert b2 < b1
        assert b2 >= b1 // 4

    def test_batch_increases_memory_at_fixed_length(self):
        from repro.perfmodel import estimate_memory
        from repro.common.units import parse_tokens

        s = parse_tokens("512K")
        m1 = estimate_memory(LLAMA_8B, FPDT_FULL, s, 8, batch=1)
        m2 = estimate_memory(LLAMA_8B, FPDT_FULL, s, 8, batch=2)
        assert m2.activations > m1.activations
        assert m2.model_states == m1.model_states


class TestWindowedPerfModel:
    def test_window_raises_mfu_normalized_throughput(self):
        """A 64K window at 4M context makes attention linear: the step
        gets much faster than full causal attention."""
        from repro.perfmodel import simulate_step_time

        s = parse_tokens("4M")
        full = simulate_step_time(LLAMA_8B, FPDT_FULL, s, 8, NODE80)
        windowed_cfg = LLAMA_8B.scaled(attention_window=parse_tokens("64K"))
        windowed = simulate_step_time(windowed_cfg, FPDT_FULL, s, 8, NODE80)
        assert windowed < 0.25 * full

    def test_windowed_capacity_at_least_full_causal(self):
        """Windowing only removes work; it never shrinks what fits."""
        full = max_context_length(LLAMA_8B, FPDT_FULL, 8, NODE80)
        windowed_cfg = LLAMA_8B.scaled(attention_window=parse_tokens("64K"))
        windowed = max_context_length(windowed_cfg, FPDT_FULL, 8, NODE80)
        assert windowed >= full

    def test_windowed_fpdt_pipeline_fetch_traffic_bounded(self):
        """In the simulated pipeline, a one-chunk window bounds the h2d
        busy time per layer (O(u) fetches instead of O(u^2))."""
        from repro.hardware import make_cluster
        from repro.perfmodel import simulate_fpdt_layer

        cluster = make_cluster(NODE80, 4)
        s, chunk = parse_tokens("512K"), parse_tokens("64K")
        full = simulate_fpdt_layer(LLAMA_8B, cluster, s, chunk, phase="backward")
        cfg_w = LLAMA_8B.scaled(attention_window=chunk)
        win = simulate_fpdt_layer(cfg_w, cluster, s, chunk, phase="backward")
        assert win.busy["h2d"] < 0.6 * full.busy["h2d"]
        assert win.makespan < full.makespan
