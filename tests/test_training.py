"""Training-stack tests: Adam, synthetic data, trainer convergence, and
the Fig.-14 equivalence (baseline vs FPDT loss curves coincide)."""

import numpy as np
import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt
from repro.runtime import VirtualCluster
from repro.training import Adam, AdamState, SyntheticCorpus, adam_step, make_batch
from repro.training.data import make_padded_batch
from repro.training.trainer import Trainer

from .helpers import rng


class TestAdam:
    def test_single_step_direction(self):
        p = np.array([1.0, -1.0])
        g = np.array([0.5, -0.5])
        state = AdamState.zeros_like(p)
        new = adam_step(p, g, state, lr=0.1, t=1)
        # Adam's first step moves by ~lr in the gradient's sign direction.
        np.testing.assert_allclose(new, p - 0.1 * np.sign(g), atol=1e-6)

    def test_bias_correction_t_required(self):
        with pytest.raises(ValueError):
            adam_step(np.ones(1), np.ones(1), AdamState.zeros_like(np.ones(1)), lr=0.1, t=0)

    def test_weight_decay_decoupled(self):
        p = np.array([2.0])
        g = np.array([0.0])
        new = adam_step(p, g, AdamState.zeros_like(p), lr=0.1, weight_decay=0.1, t=1)
        np.testing.assert_allclose(new, p - 0.1 * 0.1 * p)

    def test_dict_optimizer_converges_quadratic(self):
        params = {"x": np.array([5.0])}
        opt = Adam(params, lr=0.3)
        for _ in range(200):
            grads = {"x": 2 * params["x"]}
            params = opt.step(params, grads)
        assert abs(params["x"][0]) < 1e-2

    def test_missing_grad_raises(self):
        params = {"a": np.ones(2), "b": np.ones(2)}
        opt = Adam(params)
        with pytest.raises(KeyError):
            opt.step(params, {"a": np.ones(2)})


class TestSyntheticCorpus:
    def test_transitions_follow_kernel(self):
        corpus = SyntheticCorpus(16, branching=2, seed=0)
        stream = corpus.sample(500)
        for a, b in zip(stream[:-1], stream[1:]):
            assert b in corpus.successors[a]

    def test_deterministic_given_seed(self):
        c1 = SyntheticCorpus(16, seed=3)
        c2 = SyntheticCorpus(16, seed=3)
        np.testing.assert_array_equal(c1.sample(100), c2.sample(100))

    def test_entropy_floor(self):
        assert SyntheticCorpus(16, branching=4).entropy_floor() == pytest.approx(np.log(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(1)
        with pytest.raises(ValueError):
            SyntheticCorpus(8, branching=9)
        with pytest.raises(ValueError):
            SyntheticCorpus(8).sample(0)

    def test_make_batch_shapes_and_shift(self):
        corpus = SyntheticCorpus(16, seed=0)
        tokens, labels = make_batch(corpus, 3, 10)
        assert tokens.shape == labels.shape == (3, 10)
        # labels are next tokens: label[i] must be a valid successor of token[i]
        for b in range(3):
            for i in range(10):
                assert labels[b, i] in corpus.successors[tokens[b, i]]

    def test_padded_batch_masks_tail(self):
        from repro.models.loss import IGNORE_INDEX

        corpus = SyntheticCorpus(16, seed=0)
        _, labels = make_padded_batch(corpus, 2, 8, pad_fraction=0.25)
        assert (labels[:, -2:] == IGNORE_INDEX).all()
        assert (labels[:, :-2] != IGNORE_INDEX).all()


class TestTrainerConvergence:
    def _setup(self, seed=0):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32)
        model = GPTModel(cfg, seed=seed)
        corpus = SyntheticCorpus(cfg.vocab_size, branching=2, seed=seed)
        return cfg, model, corpus

    def test_baseline_loss_decreases(self):
        _, model, corpus = self._setup()
        trainer = Trainer(model, corpus, lr=3e-3)
        result = trainer.train(60, batch_size=4, seq_len=16)
        early = float(np.mean(result.losses[:5]))
        late = result.final_loss()
        assert late < early * 0.7

    def test_fpdt_loss_decreases(self):
        cfg, model, corpus = self._setup(seed=1)
        runner = FPDTModelRunner(model, VirtualCluster(4), num_chunks=2, loss_chunks=2)
        trainer = Trainer(model, corpus, runner=runner, lr=1e-2)
        result = trainer.train(50, batch_size=2, seq_len=16)
        assert result.final_loss(5) < np.mean(result.losses[:5]) * 0.8

    def test_figure14_curves_identical(self):
        """Fig. 14: baseline, FPDT, and FPDT+offload produce the same loss
        curve when seeded identically — FPDT is 'a pure system
        optimization technique'."""
        curves = []
        for mode in ("baseline", "fpdt", "fpdt-offload"):
            cfg, model, corpus = self._setup(seed=7)
            runner = None
            if mode != "baseline":
                runner = FPDTModelRunner(
                    model, VirtualCluster(4), num_chunks=2,
                    offload=(mode == "fpdt-offload"), loss_chunks=2,
                )
            trainer = Trainer(model, corpus, runner=runner, lr=3e-3)
            curves.append(trainer.train(12, batch_size=2, seq_len=16).losses)
        base, fpdt, fpdt_off = curves
        np.testing.assert_allclose(fpdt, base, rtol=1e-8)
        np.testing.assert_allclose(fpdt_off, base, rtol=1e-8)

    def test_result_bookkeeping(self):
        _, model, corpus = self._setup(seed=2)
        trainer = Trainer(model, corpus, lr=1e-3)
        trainer.train(3, batch_size=2, seq_len=8)
        assert trainer.result.tokens_seen == 3 * 2 * 8
        assert len(trainer.result.losses) == 3

    def test_final_loss_requires_steps(self):
        from repro.training.trainer import TrainResult

        with pytest.raises(ValueError):
            TrainResult().final_loss()
