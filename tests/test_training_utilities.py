"""Serialization, LR schedules and gradient clipping."""

import math

import numpy as np
import pytest

from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.training import (
    Adam,
    SyntheticCorpus,
    checkpoint_meta,
    clip_grad_norm,
    global_grad_norm,
    load_checkpoint,
    normalize_checkpoint_path,
    save_checkpoint,
    warmup_cosine_lr,
)
from repro.training.trainer import Trainer

from .helpers import rng


class TestSchedule:
    def test_warmup_ramps_linearly(self):
        kw = dict(base_lr=1.0, warmup_steps=10, total_steps=100)
        lrs = [warmup_cosine_lr(s, **kw) for s in range(10)]
        np.testing.assert_allclose(lrs, (np.arange(10) + 1) / 10)

    def test_cosine_decays_to_floor(self):
        kw = dict(base_lr=1.0, warmup_steps=10, total_steps=100, min_lr_fraction=0.1)
        assert warmup_cosine_lr(99, **kw) == pytest.approx(0.1, abs=0.01)
        assert warmup_cosine_lr(10, **kw) == pytest.approx(1.0)

    def test_monotone_decay_after_warmup(self):
        kw = dict(base_lr=3e-4, warmup_steps=5, total_steps=50)
        lrs = [warmup_cosine_lr(s, **kw) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_past_total_steps_stays_at_floor(self):
        kw = dict(base_lr=1.0, warmup_steps=2, total_steps=10, min_lr_fraction=0.2)
        assert warmup_cosine_lr(500, **kw) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            warmup_cosine_lr(0, base_lr=1.0, warmup_steps=10, total_steps=5)
        with pytest.raises(ValueError):
            warmup_cosine_lr(0, base_lr=1.0, warmup_steps=0, total_steps=0)


class TestClipping:
    def test_norm_computation(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert global_grad_norm(grads) == pytest.approx(5.0)

    def test_norm_pins_float64_reference_value(self):
        """The buffered-accumulation implementation must reproduce the
        naive cast-everything-to-float64 value (the previous
        implementation) on mixed-dtype, mixed-scale gradients."""
        grads = {
            "w": (rng(0).standard_normal((64, 33)) * 1e3).astype(np.float32),
            "b": (rng(1).standard_normal(129) * 1e-4).astype(np.float32),
            "h": rng(2).standard_normal((7, 5, 3)).astype(np.float16),
            "d": rng(3).standard_normal(41),  # float64
            "i": np.arange(-5, 6),  # integer grads stay supported
        }
        reference = math.sqrt(sum(
            float(np.sum(np.asarray(g, dtype=float) ** 2))
            for g in grads.values()
        ))
        assert global_grad_norm(grads) == pytest.approx(reference, rel=1e-12)

    def test_norm_accumulates_in_float64(self):
        """float32 pairwise round-off must not leak into the result:
        many identical small squares sum exactly in float64."""
        grads = {"g": np.full(1 << 16, 1e-4, dtype=np.float32)}
        expected = math.sqrt((1 << 16) * float(np.float32(1e-4)) ** 2)
        assert global_grad_norm(grads) == pytest.approx(expected, rel=1e-12)

    def test_norm_non_contiguous_gradient(self):
        base = rng(4).standard_normal((8, 8)).astype(np.float32)
        view = base[::2, ::2]
        expected = global_grad_norm({"g": np.ascontiguousarray(view)})
        assert global_grad_norm({"g": view}) == pytest.approx(expected, rel=1e-12)

    def test_no_clip_below_threshold(self):
        grads = {"a": np.array([0.3, 0.4])}
        clipped, norm = clip_grad_norm(grads, 1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_array_equal(clipped["a"], grads["a"])

    def test_clip_rescales_to_max_norm(self):
        grads = {"a": np.array([30.0]), "b": np.array([40.0])}
        clipped, norm = clip_grad_norm(grads, 5.0)
        assert norm == pytest.approx(50.0)
        assert global_grad_norm(clipped) == pytest.approx(5.0)
        # Direction preserved.
        assert clipped["a"][0] / clipped["b"][0] == pytest.approx(0.75)

    def test_zero_grads_pass_through(self):
        grads = {"a": np.zeros(3)}
        clipped, norm = clip_grad_norm(grads, 1.0)
        assert norm == 0.0
        np.testing.assert_array_equal(clipped["a"], np.zeros(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm({"a": np.ones(2)}, 0.0)

    def test_trainer_with_clip_and_schedule_converges(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        model = GPTModel(cfg, seed=0)
        corpus = SyntheticCorpus(32, branching=2, seed=0)
        schedule = lambda step: warmup_cosine_lr(
            step, base_lr=5e-3, warmup_steps=5, total_steps=60
        )
        trainer = Trainer(model, corpus, lr=5e-3, grad_clip=1.0, lr_schedule=schedule)
        result = trainer.train(60, batch_size=4, seq_len=16)
        assert result.final_loss() < np.mean(result.losses[:5]) * 0.8


class TestSerialization:
    def _train_briefly(self, cfg, seed=0, steps=3):
        model = GPTModel(cfg, seed=seed)
        corpus = SyntheticCorpus(cfg.vocab_size, branching=2, seed=seed)
        trainer = Trainer(model, corpus, lr=1e-3)
        trainer.train(steps, batch_size=2, seq_len=8)
        return model, trainer

    def test_roundtrip_params(self, tmp_path):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        model, trainer = self._train_briefly(cfg)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer=trainer.optimizer, step=3)

        restored = GPTModel(cfg, seed=999)  # different init
        opt = Adam(restored.all_params(), lr=1e-3)
        step = load_checkpoint(path, restored, optimizer=opt)
        assert step == 3
        assert opt.t == trainer.optimizer.t
        for name, value in model.all_params().items():
            np.testing.assert_array_equal(restored.all_params()[name], value)

    def test_resumed_training_matches_uninterrupted(self, tmp_path):
        """Save at step 3, restore into a fresh model+optimizer, train 3
        more steps: identical to 6 uninterrupted steps."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)

        ref_model = GPTModel(cfg, seed=1)
        ref_corpus = SyntheticCorpus(32, branching=2, seed=1)
        ref_trainer = Trainer(ref_model, ref_corpus, lr=1e-3)
        ref_losses = ref_trainer.train(6, batch_size=2, seq_len=8).losses

        model = GPTModel(cfg, seed=1)
        corpus = SyntheticCorpus(32, branching=2, seed=1)
        trainer = Trainer(model, corpus, lr=1e-3)
        first = trainer.train(3, batch_size=2, seq_len=8).losses
        path = tmp_path / "mid.npz"
        save_checkpoint(path, model, optimizer=trainer.optimizer, step=3)

        resumed = GPTModel(cfg, seed=42)
        opt = Adam(resumed.all_params(), lr=1e-3)
        load_checkpoint(path, resumed, optimizer=opt)
        # Note: the corpus stream continues from where training left off.
        trainer2 = Trainer(resumed, corpus, lr=1e-3)
        trainer2.optimizer = opt
        second = trainer2.train(3, batch_size=2, seq_len=8).losses
        np.testing.assert_allclose(first + second, ref_losses, rtol=1e-12)

    def test_architecture_mismatch_rejected(self, tmp_path):
        cfg_a = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        cfg_b = tiny_gpt(hidden_size=64, num_heads=4, num_layers=1)
        model, _ = self._train_briefly(cfg_a)
        path = tmp_path / "a.npz"
        save_checkpoint(path, model)
        with pytest.raises(ValueError, match="checkpoint was written for"):
            load_checkpoint(path, GPTModel(cfg_b))

    def test_arch_family_mismatch_rejected(self, tmp_path):
        cfg_gpt = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        cfg_llama = tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=1)
        model = GPTModel(cfg_gpt, seed=0)
        path = tmp_path / "gpt.npz"
        save_checkpoint(path, model)
        with pytest.raises(ValueError):
            load_checkpoint(path, GPTModel(cfg_llama))

    def test_missing_optimizer_state_rejected(self, tmp_path):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model = GPTModel(cfg, seed=0)
        path = tmp_path / "no_opt.npz"
        save_checkpoint(path, model)  # no optimizer
        opt = Adam(model.all_params())
        with pytest.raises(ValueError, match="no optimizer state"):
            load_checkpoint(path, GPTModel(cfg, seed=0), optimizer=opt)

    def test_partial_optimizer_state_raises_valueerror_not_keyerror(
        self, tmp_path
    ):
        """Regression: a checkpoint whose optimizer entries don't cover
        the optimizer's parameters must fail with the documented
        ValueError (naming what's missing), not a bare KeyError from
        the archive lookup."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model, trainer = self._train_briefly(cfg)
        path = tmp_path / "full.npz"
        save_checkpoint(path, model, optimizer=trainer.optimizer, step=3)
        # Corrupt the archive: drop one adam_m entry.
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        dropped = next(k for k in arrays if k.startswith("adam_m/"))
        del arrays[dropped]
        np.savez(path, **arrays)

        opt = Adam(model.all_params(), lr=1e-3)
        with pytest.raises(ValueError, match="optimizer state mismatch"):
            load_checkpoint(path, GPTModel(cfg, seed=0), optimizer=opt)
        try:
            load_checkpoint(path, GPTModel(cfg, seed=0), optimizer=opt)
        except ValueError as exc:
            assert dropped[len("adam_m/"):] in str(exc)

    def test_suffixless_path_roundtrips(self, tmp_path):
        """Regression: np.savez writes ``ckpt.npz`` for ``ckpt``; load
        used to look for the bare name and fail.  Both sides now
        normalize, and save returns the real path it wrote."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model, trainer = self._train_briefly(cfg)
        bare = tmp_path / "ckpt"
        written = save_checkpoint(bare, model, optimizer=trainer.optimizer, step=3)
        assert written == tmp_path / "ckpt.npz"
        assert written.exists() and not bare.exists()

        restored = GPTModel(cfg, seed=9)
        opt = Adam(restored.all_params(), lr=1e-3)
        # Loading via the bare name works too.
        assert load_checkpoint(bare, restored, optimizer=opt) == 3

    def test_suffix_appended_never_replaced(self, tmp_path):
        assert normalize_checkpoint_path(tmp_path / "a").name == "a.npz"
        assert normalize_checkpoint_path(tmp_path / "a.npz").name == "a.npz"
        # Dotted names keep their "suffix": step markers are not formats.
        assert normalize_checkpoint_path(tmp_path / "a.step5").name == "a.step5.npz"

    def test_crash_mid_save_preserves_previous_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """Regression: save used to write the destination in place, so
        dying mid-write corrupted the previous checkpoint.  Now the
        archive lands in a temp file and is os.replace-d: a crash
        leaves the old file intact and no temp litter."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model, trainer = self._train_briefly(cfg)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer=trainer.optimizer, step=3)
        good = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk died mid-write")

        monkeypatch.setattr(np, "savez", explode)
        with pytest.raises(OSError, match="disk died"):
            save_checkpoint(path, model, optimizer=trainer.optimizer, step=4)
        monkeypatch.undo()

        assert path.read_bytes() == good  # old checkpoint untouched
        assert list(tmp_path.glob("*.tmp")) == []  # temp file cleaned up
        restored = GPTModel(cfg, seed=7)
        opt = Adam(restored.all_params(), lr=1e-3)
        assert load_checkpoint(path, restored, optimizer=opt) == 3

    def test_meta_carries_resume_state(self, tmp_path):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model, trainer = self._train_briefly(cfg)
        state = {"kind": "synthetic", "rng": {"dummy": 1}}
        path = save_checkpoint(
            tmp_path / "meta", model, optimizer=trainer.optimizer,
            step=5, tokens_seen=1234, data_state=state,
        )
        meta = checkpoint_meta(path)
        assert meta["step"] == 5
        assert meta["tokens_seen"] == 1234
        assert meta["data_state"] == state
