"""Obs-on/off bitwise invariance: tracing must be invisible.

The span tracer's contract mirrors the rank executor's (PR 5): with a
tracer attached — event observer hooked into ``Trace.record``, spans
wrapping every step — loss bytes, gradient bytes, the trace-event
stream (ids included), and pool peaks must be identical to an untraced
run, under both the serial and the threaded executor.  And the span
log itself must be identical serial vs threaded (per-rank buffers
merged at the join in rank order)."""

from __future__ import annotations

from contextlib import nullcontext

import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.obs import SpanTracer
from repro.parallel import UlyssesModelRunner
from repro.runtime import VirtualCluster
from repro.runtime.executor import executor, reset_executor
from repro.training import SyntheticCorpus
from repro.training.trainer import Trainer

from .helpers import rng

WORLD = 4
SEQ = 32


@pytest.fixture(autouse=True)
def _clean_global_executor():
    reset_executor()
    yield
    reset_executor()


def _llama():
    return tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2)


STRATEGIES = {
    "ulysses": (_llama, lambda m, c: UlyssesModelRunner(m, c)),
    "fpdt": (
        _llama,
        lambda m, c: FPDTModelRunner(m, c, num_chunks=2, offload=False),
    ),
    "fpdt_offload": (
        _llama,
        lambda m, c: FPDTModelRunner(m, c, num_chunks=2, offload=True),
    ),
}


def _signature(cluster):
    events = [
        (e.event_id, e.kind, e.label, e.rank, e.stream, e.nbytes, e.flops)
        for e in cluster.trace.events
    ]
    peaks = [d.hbm.peak for d in cluster.devices] + [cluster.host.pool.peak]
    return events, peaks


def _run_strategy(name: str, *, workers: int, traced: bool):
    cfg_factory, make_runner = STRATEGIES[name]
    cfg = cfg_factory()
    g = rng(0)
    tokens = g.integers(0, cfg.vocab_size, size=(1, SEQ))
    labels = g.integers(0, cfg.vocab_size, size=(1, SEQ))
    model = GPTModel(cfg, seed=7)
    cluster = VirtualCluster(WORLD)
    runner = make_runner(model, cluster)
    tracer = None
    ctx = nullcontext()
    if traced:
        tracer = SpanTracer().attach(cluster.trace)
        ctx = tracer.span("train_step", trace_id="step-0", kind="train_step",
                          ambient=True)
    with executor(workers=workers), ctx:
        loss, grads = runner.forward_backward(tokens, labels)
    sig = _signature(cluster)
    grad_bytes = {k: grads[k].tobytes() for k in sorted(grads)}
    return loss, grad_bytes, sig, tracer


def _span_log(tracer):
    return [
        (
            s.trace_id, s.span_id, s.parent_id, s.name, s.kind,
            s.start, s.end, s.seq, s.error,
            tuple(sorted(s.event_counts.items())),
            tuple(sorted(s.event_bytes.items())),
        )
        for s in sorted(tracer.spans, key=lambda s: s.seq)
    ]


@pytest.mark.parametrize("name", sorted(STRATEGIES))
@pytest.mark.parametrize("workers", [1, 4])
def test_tracing_is_bitwise_invisible(name, workers):
    loss0, grads0, sig0, _ = _run_strategy(name, workers=workers, traced=False)
    loss1, grads1, sig1, tracer = _run_strategy(name, workers=workers,
                                                traced=True)
    assert loss0 == loss1  # exact float equality
    assert grads0 == grads1  # byte-for-byte
    assert sig0 == sig1  # trace events (ids included) + pool peaks
    # And tracing actually observed the run.
    assert tracer.emitted == 1
    assert tracer.spans[0].event_counts


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_span_log_identical_serial_vs_threaded(name):
    _, _, _, t1 = _run_strategy(name, workers=1, traced=True)
    _, _, _, t4 = _run_strategy(name, workers=4, traced=True)
    assert _span_log(t1) == _span_log(t4)


def test_reference_model_training_unaffected_by_tracer():
    """The single-device trainer path (no runner, no cluster): spans
    wrap each step but must not perturb the loss stream."""
    def run(traced):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1,
                       vocab_size=32)
        model = GPTModel(cfg, seed=3)
        corpus = SyntheticCorpus(cfg.vocab_size, branching=2, seed=3)
        tracer = SpanTracer() if traced else None
        trainer = Trainer(model, corpus, lr=5e-3, tracer=tracer)
        trainer.train(3, batch_size=2, seq_len=16)
        return list(trainer.result.losses), tracer

    plain, _ = run(False)
    traced, tracer = run(True)
    assert plain == traced
    assert tracer.emitted == 3
    assert [s.trace_id for s in tracer.spans] == [
        "step-0", "step-1", "step-2"
    ]


@pytest.mark.parametrize("workers", [1, 4])
def test_fpdt_offload_training_loop_invariant(workers):
    """Multi-step FPDT+offload training through the Trainer with the
    tracer attached to the cluster trace: losses and the full runtime
    signature stay bitwise identical."""
    def run(traced):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2,
                       vocab_size=32)
        model = GPTModel(cfg, seed=3)
        corpus = SyntheticCorpus(cfg.vocab_size, branching=2, seed=3)
        runner = FPDTModelRunner(
            model, VirtualCluster(2), num_chunks=2, offload=True,
            loss_chunks=2,
        )
        tracer = SpanTracer() if traced else None
        trainer = Trainer(model, corpus, runner=runner, lr=5e-3,
                          tracer=tracer)
        with executor(workers=workers):
            trainer.train(3, batch_size=2, seq_len=16)
        return list(trainer.result.losses), _signature(runner.cluster), tracer

    losses0, sig0, _ = run(False)
    losses1, sig1, tracer = run(True)
    assert losses0 == losses1
    assert sig0 == sig1
    # Every step span attributed runtime events.
    assert tracer.emitted == 3
    assert all(s.event_counts for s in tracer.spans)
