"""ZeRO sharded optimizer: numerical equivalence with single-device Adam
across stages, plus the model-state byte accounting used by the capacity
experiments."""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.parallel.zero import FlatParamSpace, ZeroAdam, zero_model_state_bytes
from repro.runtime import VirtualCluster
from repro.training.optimizer import Adam

from .helpers import rng


def _params(seed=0):
    g = rng(seed)
    return {
        "w1": g.normal(size=(4, 6)),
        "w2": g.normal(size=(3,)),
        "embed": g.normal(size=(5, 2)),
    }


def _grad_like(params, seed):
    g = rng(seed)
    return {k: g.normal(size=v.shape) for k, v in params.items()}


class TestFlatParamSpace:
    def test_flatten_unflatten_roundtrip(self):
        params = _params()
        space = FlatParamSpace(params, world=4)
        out = space.unflatten(space.flatten(params))
        for k in params:
            np.testing.assert_array_equal(out[k], params[k])

    def test_padding_to_world_multiple(self):
        params = _params()  # 24 + 3 + 10 = 37 elements
        space = FlatParamSpace(params, world=4)
        assert space.numel == 37
        assert space.padded == 40
        assert space.shard_size == 10

    def test_shards_tile_the_vector(self):
        params = _params()
        space = FlatParamSpace(params, world=4)
        flat = space.flatten(params)
        rebuilt = np.concatenate([space.shard(flat, r) for r in range(4)])
        np.testing.assert_array_equal(rebuilt, flat)

    def test_deterministic_name_order(self):
        params = _params()
        s1 = FlatParamSpace(params, 2)
        s2 = FlatParamSpace(dict(reversed(list(params.items()))), 2)
        assert [e.name for e in s1.entries] == [e.name for e in s2.entries]

    def test_bad_flat_shape_raises(self):
        space = FlatParamSpace(_params(), 2)
        with pytest.raises(ValueError):
            space.unflatten(np.zeros(3))


@pytest.mark.parametrize("stage", [1, 2, 3])
class TestZeroAdamEquivalence:
    def test_matches_plain_adam_sum_reduce(self, stage):
        """Sequence-parallel semantics: per-rank partial grads sum to the
        full gradient; ZeRO must match Adam fed that sum."""
        world = 4
        params = _params(0)
        partials = [_grad_like(params, 10 + r) for r in range(world)]
        total = {
            k: np.sum([p[k] for p in partials], axis=0) for k in params
        }
        ref_opt = Adam(params, lr=1e-2)
        ref1 = ref_opt.step(params, total)
        ref2 = ref_opt.step(ref1, total)

        cluster = VirtualCluster(world)
        zopt = ZeroAdam(cluster, params, stage=stage, lr=1e-2, grad_reduce="sum")
        new1 = zopt.step(partials)
        new2 = zopt.step(partials)
        for k in params:
            np.testing.assert_allclose(new1[k], ref1[k], rtol=1e-12)
            np.testing.assert_allclose(new2[k], ref2[k], rtol=1e-12)

    def test_matches_plain_adam_mean_reduce(self, stage):
        world = 2
        params = _params(1)
        partials = [_grad_like(params, 20 + r) for r in range(world)]
        mean = {k: np.mean([p[k] for p in partials], axis=0) for k in params}
        ref = Adam(params, lr=5e-3).step(params, mean)
        cluster = VirtualCluster(world)
        zopt = ZeroAdam(cluster, params, stage=stage, lr=5e-3, grad_reduce="mean")
        new = zopt.step(partials)
        for k in params:
            np.testing.assert_allclose(new[k], ref[k], rtol=1e-12)

    def test_collective_pattern_per_stage(self, stage):
        world = 2
        params = _params(2)
        cluster = VirtualCluster(world)
        zopt = ZeroAdam(cluster, params, stage=stage)
        zopt.step([_grad_like(params, 1)] * world)
        kinds = [e.label.split(":")[0] for e in cluster.trace.filter(kind="collective")]
        if stage == 1:
            assert "all_reduce" in kinds
            assert "reduce_scatter" not in kinds
        else:
            assert "reduce_scatter" in kinds
            assert "all_reduce" not in kinds
        assert "all_gather" in kinds


class TestZeroAdamValidation:
    def test_bad_stage(self):
        with pytest.raises(ValueError):
            ZeroAdam(VirtualCluster(2), _params(), stage=4)

    def test_bad_reduce(self):
        with pytest.raises(ValueError):
            ZeroAdam(VirtualCluster(2), _params(), grad_reduce="max")

    def test_wrong_rank_count(self):
        zopt = ZeroAdam(VirtualCluster(2), _params())
        with pytest.raises(ValueError):
            zopt.step([_grad_like(_params(), 0)])


class TestModelStateBytes:
    PSI = 8_000_000_000  # 8B params

    def test_stage0_is_16_bytes_per_param(self):
        assert zero_model_state_bytes(self.PSI, 8, 0) == 16 * self.PSI

    def test_stage1_shards_optimizer(self):
        got = zero_model_state_bytes(self.PSI, 8, 1)
        assert got == (2 + 2) * self.PSI + 12 * self.PSI // 8

    def test_stage2_shards_grads_too(self):
        got = zero_model_state_bytes(self.PSI, 8, 2)
        assert got == 2 * self.PSI + (2 + 12) * self.PSI // 8

    def test_stage3_shards_everything(self):
        assert zero_model_state_bytes(self.PSI, 8, 3) == 16 * self.PSI // 8

    def test_monotone_in_stage(self):
        sizes = [zero_model_state_bytes(self.PSI, 8, s) for s in range(4)]
        assert sizes == sorted(sizes, reverse=True)

    def test_paper_table3_zero_ordering(self):
        """Table 3 shows HBM 58.9G (Z1) > 54.5G (Z2) > 52.3G (Z3) for
        Llama-8B on 8 GPUs — the model-state part of that ordering."""
        sizes = [zero_model_state_bytes(self.PSI, 8, s) for s in (1, 2, 3)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_invalid_stage_raises(self):
        with pytest.raises(ValueError):
            zero_model_state_bytes(10, 2, 5)
