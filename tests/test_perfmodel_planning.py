"""Training-plan arithmetic."""

import pytest

from repro.common.units import parse_tokens
from repro.hardware import paper_node_a100_40g, paper_node_a100_80g
from repro.models import LLAMA_8B, LLAMA_70B
from repro.perfmodel import FPDT_FULL, ULYSSES
from repro.perfmodel.planning import plan_training

NODE = paper_node_a100_80g()


class TestPlanTraining:
    def test_basic_consistency(self):
        plan = plan_training(LLAMA_8B, FPDT_FULL, parse_tokens("1M"), 8, NODE)
        assert plan is not None
        assert plan.tokens_per_step == parse_tokens("1M")
        assert plan.tokens_per_second == pytest.approx(
            plan.tokens_per_step / plan.step_time
        )
        assert plan.tokens_per_day == pytest.approx(plan.tokens_per_second * 86400)

    def test_gpu_hours_scale_with_world(self):
        p8 = plan_training(LLAMA_8B, FPDT_FULL, parse_tokens("512K"), 8, NODE)
        p16 = plan_training(LLAMA_8B, FPDT_FULL, parse_tokens("512K"), 16, NODE)
        # GPU-hours per token is roughly scale-invariant (efficiency holds).
        assert p16.gpu_hours_per_billion_tokens == pytest.approx(
            p8.gpu_hours_per_billion_tokens, rel=0.3
        )

    def test_days_to_target(self):
        plan = plan_training(LLAMA_8B, FPDT_FULL, parse_tokens("1M"), 8, NODE)
        days = plan.days_to_tokens(1e12)
        assert days == pytest.approx(1e12 / plan.tokens_per_day)
        with pytest.raises(ValueError):
            plan.days_to_tokens(0)

    def test_infeasible_returns_none(self):
        assert plan_training(LLAMA_70B, ULYSSES, parse_tokens("1M"), 4, paper_node_a100_40g()) is None

    def test_fpdt_cheaper_than_ulysses_at_long_context(self):
        """The MFU advantage translates into fewer GPU-hours per token."""
        s = parse_tokens("512K")
        p_fp = plan_training(LLAMA_8B, FPDT_FULL, s, 8, NODE)
        p_ul = plan_training(LLAMA_8B, ULYSSES, s, 8, NODE)
        assert p_fp.gpu_hours_per_billion_tokens < p_ul.gpu_hours_per_billion_tokens

    def test_magnitudes_sane(self):
        """~8B model on 8 A100s: hundreds to a few thousand GPU-hours per
        billion tokens at multi-100K context (attention-dominated)."""
        plan = plan_training(LLAMA_8B, FPDT_FULL, parse_tokens("1M"), 8, NODE)
        assert 50 < plan.gpu_hours_per_billion_tokens < 10_000
