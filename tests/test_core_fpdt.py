"""FPDT correctness and memory-claim tests.

The block-level tests demand near-bitwise agreement with the reference
transformer; the memory tests *measure* the paper's claims on the pools:
chunking shrinks the attention working set, offloading shrinks it to one
chunk, FPDT-with-offload beats plain Ulysses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ChunkLayout,
    fpdt_block_backward,
    fpdt_block_forward,
)
from repro.core.chunking import shard_sequence, unshard_sequence
from repro.models import TransformerBlock, tiny_gpt, tiny_llama
from repro.parallel import ulysses_block_forward
from repro.runtime import VirtualCluster

from .helpers import rng

WORLD = 4
TOL = dict(rtol=1e-8, atol=1e-10)


def _make_case(cfg, seed=0, b=1, s_local=8):
    s_global = s_local * WORLD
    block = TransformerBlock(cfg, rng(seed))
    g = rng(seed + 1)
    x = g.normal(size=(b, s_global, cfg.hidden_size))
    dy = g.normal(size=(b, s_global, cfg.hidden_size))
    y_ref = block.forward(x)
    dx_ref = block.backward(dy)
    return block, x, dy, y_ref, dx_ref


def _run_fpdt(block, cfg, x, dy, num_chunks, *, offload=True, world=WORLD):
    layout = ChunkLayout(x.shape[1], world, num_chunks)
    cluster = VirtualCluster(world)
    x_shards = shard_sequence(x, layout)
    dy_shards = shard_sequence(dy, layout)
    y_shards, ctx = fpdt_block_forward(
        cluster, block.params, cfg, layout, x_shards, offload=offload
    )
    dx_shards, grads = fpdt_block_backward(cluster, cfg, ctx, dy_shards)
    y = unshard_sequence(y_shards, layout)
    dx = unshard_sequence(dx_shards, layout)
    cluster.check_no_leaks()
    return y, dx, grads, cluster


CONFIGS = [
    pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4), id="gpt"),
    pytest.param(lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=4), id="llama-mha"),
    pytest.param(lambda: tiny_llama(hidden_size=64, num_heads=8, num_kv_heads=4), id="llama-gqa"),
]


class TestFPDTBlockEquivalence:
    @pytest.mark.parametrize("cfg_factory", CONFIGS)
    @pytest.mark.parametrize("num_chunks", [1, 2, 4])
    def test_matches_reference_with_offload(self, cfg_factory, num_chunks):
        cfg = cfg_factory()
        block, x, dy, y_ref, dx_ref = _make_case(cfg)
        y, dx, grads, _ = _run_fpdt(block, cfg, x, dy, num_chunks, offload=True)
        np.testing.assert_allclose(y, y_ref, **TOL)
        np.testing.assert_allclose(dx, dx_ref, **TOL)
        assert set(grads) == set(block.grads)
        for name in grads:
            np.testing.assert_allclose(
                grads[name], block.grads[name], rtol=1e-7, atol=1e-9, err_msg=name
            )

    @pytest.mark.parametrize("cfg_factory", CONFIGS)
    def test_matches_reference_without_offload(self, cfg_factory):
        cfg = cfg_factory()
        block, x, dy, y_ref, dx_ref = _make_case(cfg, seed=3)
        y, dx, grads, _ = _run_fpdt(block, cfg, x, dy, 4, offload=False)
        np.testing.assert_allclose(y, y_ref, **TOL)
        np.testing.assert_allclose(dx, dx_ref, **TOL)

    def test_offload_and_no_offload_bitwise_identical(self):
        """Offloading is pure data movement: results must be *exactly*
        equal, not merely close."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg, seed=5)
        y1, dx1, g1, _ = _run_fpdt(block, cfg, x, dy, 4, offload=True)
        y2, dx2, g2, _ = _run_fpdt(block, cfg, x, dy, 4, offload=False)
        np.testing.assert_array_equal(y1, y2)
        np.testing.assert_array_equal(dx1, dx2)
        for name in g1:
            np.testing.assert_array_equal(g1[name], g2[name])

    def test_chunk_count_does_not_change_results(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg, seed=6)
        outs = [_run_fpdt(block, cfg, x, dy, u)[0] for u in (1, 2, 4, 8)]
        for y in outs[1:]:
            np.testing.assert_allclose(y, outs[0], rtol=1e-9, atol=1e-11)

    def test_agrees_with_ulysses(self):
        """FPDT is chunked Ulysses: u=1 must match the Ulysses baseline on
        the contiguous layout (shuffle degenerates to plain sharding)."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg, seed=7)
        layout = ChunkLayout(x.shape[1], WORLD, 1)
        cluster = VirtualCluster(WORLD)
        y_u, _ = ulysses_block_forward(
            cluster, block.params, cfg, np.split(x, WORLD, axis=1)
        )
        y_f, _, _, _ = _run_fpdt(block, cfg, x, dy, 1)
        np.testing.assert_allclose(
            y_f, np.concatenate(y_u, axis=1), rtol=1e-9, atol=1e-11
        )

    @settings(max_examples=8, deadline=None)
    @given(
        num_chunks=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 500),
    )
    def test_property_equivalence_random_weights(self, num_chunks, seed):
        cfg = tiny_gpt(hidden_size=16, num_heads=4)
        block, x, dy, y_ref, dx_ref = _make_case(cfg, seed=seed, s_local=4)
        y, dx, _, _ = _run_fpdt(block, cfg, x, dy, num_chunks)
        np.testing.assert_allclose(y, y_ref, rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(dx, dx_ref, rtol=1e-7, atol=1e-9)

    def test_batched_inputs(self):
        """b > 1 flows through the whole chunk pipeline unchanged."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, y_ref, dx_ref = _make_case(cfg, seed=11, b=3, s_local=4)
        y, dx, grads, _ = _run_fpdt(block, cfg, x, dy, 2)
        np.testing.assert_allclose(y, y_ref, **TOL)
        np.testing.assert_allclose(dx, dx_ref, **TOL)


class TestFPDTMemoryClaims:
    def _peak_attn_bytes(self, num_chunks, *, offload, s_local=16):
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg, s_local=s_local)
        _, _, _, cluster = _run_fpdt(block, cfg, x, dy, num_chunks, offload=offload)
        return cluster.peak_hbm()

    def test_more_chunks_less_device_memory_with_offload(self):
        peaks = [self._peak_attn_bytes(u, offload=True) for u in (1, 2, 4, 8)]
        assert peaks[0] > peaks[1] > peaks[2] > peaks[3]

    def test_offload_beats_no_offload_at_same_chunking(self):
        """§4.1: with offloading, only one cached KV chunk occupies HBM at
        a time, vs all u chunks without."""
        with_off = self._peak_attn_bytes(4, offload=True)
        without = self._peak_attn_bytes(4, offload=False)
        assert with_off < without

    def test_fpdt_beats_plain_ulysses_peak(self):
        """The headline memory claim at block level: FPDT w/ offload uses
        strictly less peak HBM than the Ulysses baseline."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg, s_local=16)
        cluster_u = VirtualCluster(WORLD)
        ulysses_block_forward(cluster_u, block.params, cfg, np.split(x, WORLD, axis=1))
        _, _, _, cluster_f = _run_fpdt(block, cfg, x, dy, 8, offload=True)
        assert cluster_f.peak_hbm() < cluster_u.peak_hbm()

    def test_offloaded_bytes_balance(self):
        """Every byte offloaded in the forward is fetched at least once
        (later chunks and/or backward) — conservation check."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg)
        _, _, _, cluster = _run_fpdt(block, cfg, x, dy, 4, offload=True)
        d2h = cluster.trace.total_bytes("d2h")
        h2d = cluster.trace.total_bytes("h2d")
        assert d2h > 0
        assert h2d >= d2h  # KV chunks are re-fetched many times

    def test_host_pool_empty_after_backward(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg)
        _, _, _, cluster = _run_fpdt(block, cfg, x, dy, 4, offload=True)
        assert cluster.host.pool.in_use == 0


class TestFPDTTraceStructure:
    def test_forward_all_to_all_count(self):
        """Forward issues 4 all-to-alls per chunk (q, k, v, o) — the
        per-chunk collective structure of Fig. 4."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg)
        layout = ChunkLayout(x.shape[1], WORLD, 4)
        cluster = VirtualCluster(WORLD)
        fpdt_block_forward(
            cluster, block.params, cfg, layout, shard_sequence(x, layout)
        )
        a2a = cluster.trace.filter(kind="collective", label_prefix="all_to_all:fpdt")
        assert len(a2a) == 4 * 4

    def test_backward_all_to_all_count(self):
        """Backward: u all-to-alls for do plus 3 per outer iteration
        (dq, dk, dv) — Fig. 7's communication pattern."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block, x, dy, *_ = _make_case(cfg)
        u = 4
        layout = ChunkLayout(x.shape[1], WORLD, u)
        cluster = VirtualCluster(WORLD)
        y_shards, ctx = fpdt_block_forward(
            cluster, block.params, cfg, layout, shard_sequence(x, layout)
        )
        cluster.trace.clear()
        fpdt_block_backward(cluster, cfg, ctx, shard_sequence(dy, layout))
        a2a = cluster.trace.filter(kind="collective", label_prefix="all_to_all:fpdt")
        assert len(a2a) == u + 3 * u

    def test_validation_errors(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=2)  # 2 heads < 4 ranks
        cluster = VirtualCluster(WORLD)
        block = TransformerBlock(cfg, rng(0))
        layout = ChunkLayout(32, WORLD, 2)
        with pytest.raises(ValueError, match="divisible"):
            fpdt_block_forward(
                cluster, block.params, cfg, layout, [np.zeros((1, 8, 32))] * WORLD
            )
