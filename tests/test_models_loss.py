"""Loss-head tests: plain and vocabulary-chunked cross-entropy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ShapeError
from repro.models.loss import (
    IGNORE_INDEX,
    chunked_lm_head_backward,
    chunked_lm_head_forward,
    softmax_cross_entropy_backward,
    softmax_cross_entropy_forward,
    suggested_loss_chunks,
)

from .helpers import numerical_grad, rng


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss_is_log_vocab(self):
        logits = np.zeros((5, 16))
        labels = np.arange(5)
        loss, _ = softmax_cross_entropy_forward(logits, labels)
        assert loss == pytest.approx(np.log(16))

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.full((3, 8), -100.0)
        labels = np.array([1, 4, 7])
        logits[np.arange(3), labels] = 100.0
        loss, _ = softmax_cross_entropy_forward(logits, labels)
        assert loss < 1e-6

    def test_ignore_index_excluded(self):
        g = rng(0)
        logits = g.normal(size=(4, 8))
        labels = np.array([1, IGNORE_INDEX, 3, IGNORE_INDEX])
        loss, _ = softmax_cross_entropy_forward(logits, labels)
        ref, _ = softmax_cross_entropy_forward(logits[[0, 2]], labels[[0, 2]])
        assert loss == pytest.approx(ref)

    def test_gradient_numerical(self):
        g = rng(1)
        logits = g.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        _, cache = softmax_cross_entropy_forward(logits, labels)
        dlogits = softmax_cross_entropy_backward(cache)

        def f(x):
            l, _ = softmax_cross_entropy_forward(x, labels)
            return l

        np.testing.assert_allclose(dlogits, numerical_grad(f, logits.copy()), rtol=1e-5, atol=1e-8)

    def test_ignored_rows_get_zero_grad(self):
        g = rng(2)
        logits = g.normal(size=(3, 5))
        labels = np.array([0, IGNORE_INDEX, 4])
        _, cache = softmax_cross_entropy_forward(logits, labels)
        dlogits = softmax_cross_entropy_backward(cache)
        np.testing.assert_array_equal(dlogits[1], np.zeros(5))

    def test_stability_with_huge_logits(self):
        logits = np.array([[1e4, -1e4, 0.0]])
        loss, cache = softmax_cross_entropy_forward(logits, np.array([0]))
        assert np.isfinite(loss)
        assert np.isfinite(softmax_cross_entropy_backward(cache)).all()

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy_forward(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestChunkedLMHead:
    def _setup(self, seed=0, n=12, h=6, v=10):
        g = rng(seed)
        hidden = g.normal(size=(n, h))
        table = g.normal(size=(v, h))
        labels = g.integers(0, v, size=n)
        return hidden, table, labels

    @pytest.mark.parametrize("num_chunks", [1, 2, 3, 5, 12, 50])
    def test_loss_independent_of_chunking(self, num_chunks):
        hidden, table, labels = self._setup()
        ref, _ = chunked_lm_head_forward(hidden, table, labels, num_chunks=1)
        loss, _ = chunked_lm_head_forward(hidden, table, labels, num_chunks=num_chunks)
        assert loss == pytest.approx(ref, rel=1e-12)

    def test_matches_unchunked_composition(self):
        hidden, table, labels = self._setup(1)
        logits = hidden @ table.T
        ref, _ = softmax_cross_entropy_forward(logits, labels)
        loss, _ = chunked_lm_head_forward(hidden, table, labels, num_chunks=4)
        assert loss == pytest.approx(ref, rel=1e-12)

    @pytest.mark.parametrize("num_chunks", [1, 3, 12])
    def test_gradients_independent_of_chunking(self, num_chunks):
        hidden, table, labels = self._setup(2)
        _, cache1 = chunked_lm_head_forward(hidden, table, labels, num_chunks=1)
        dh_ref, dt_ref = chunked_lm_head_backward(cache1)
        _, cache = chunked_lm_head_forward(hidden, table, labels, num_chunks=num_chunks)
        dh, dt = chunked_lm_head_backward(cache)
        np.testing.assert_allclose(dh, dh_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(dt, dt_ref, rtol=1e-10, atol=1e-12)

    def test_gradient_numerical(self):
        hidden, table, labels = self._setup(3, n=6, h=4, v=7)
        _, cache = chunked_lm_head_forward(hidden, table, labels, num_chunks=3)
        dh, dt = chunked_lm_head_backward(cache)

        def fh(x):
            l, _ = chunked_lm_head_forward(x, table, labels, num_chunks=3)
            return l

        def ft(x):
            l, _ = chunked_lm_head_forward(hidden, x, labels, num_chunks=3)
            return l

        np.testing.assert_allclose(dh, numerical_grad(fh, hidden.copy()), rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(dt, numerical_grad(ft, table.copy()), rtol=1e-4, atol=1e-7)

    def test_ignore_index_in_chunks(self):
        hidden, table, labels = self._setup(4)
        labels[::3] = IGNORE_INDEX
        ref, _ = chunked_lm_head_forward(hidden, table, labels, num_chunks=1)
        loss, _ = chunked_lm_head_forward(hidden, table, labels, num_chunks=5)
        assert loss == pytest.approx(ref, rel=1e-12)

    def test_more_chunks_than_tokens_clamped(self):
        hidden, table, labels = self._setup(5, n=3)
        loss, _ = chunked_lm_head_forward(hidden, table, labels, num_chunks=99)
        ref, _ = chunked_lm_head_forward(hidden, table, labels, num_chunks=1)
        assert loss == pytest.approx(ref, rel=1e-12)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            chunked_lm_head_forward(np.zeros((4, 3)), np.zeros((5, 2)), np.zeros(4, dtype=int))

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 20),
        chunks=st.integers(1, 25),
        seed=st.integers(0, 1000),
    )
    def test_property_chunk_invariance(self, n, chunks, seed):
        g = rng(seed)
        hidden = g.normal(size=(n, 4))
        table = g.normal(size=(9, 4))
        labels = g.integers(0, 9, size=n)
        ref, c1 = chunked_lm_head_forward(hidden, table, labels, num_chunks=1)
        loss, c2 = chunked_lm_head_forward(hidden, table, labels, num_chunks=chunks)
        assert loss == pytest.approx(ref, rel=1e-10)
        dh1, dt1 = chunked_lm_head_backward(c1)
        dh2, dt2 = chunked_lm_head_backward(c2)
        np.testing.assert_allclose(dh2, dh1, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(dt2, dt1, rtol=1e-9, atol=1e-11)


class TestSuggestedChunks:
    def test_paper_rule_llama8b(self):
        # vocab 128256 / hidden 4096 * 2 = 62.6 -> 63 chunks
        assert suggested_loss_chunks(128256, 4096) == 63

    def test_minimum_one(self):
        assert suggested_loss_chunks(8, 1024) == 1
