"""bf16 emulation, loss scaling, and mixed-precision training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.precision import LossScaler, bf16_ulp, quantize_bf16
from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt
from repro.runtime import VirtualCluster
from repro.training import SyntheticCorpus
from repro.training.mixed_precision import MixedPrecisionTrainer


class TestQuantizeBf16:
    def test_exact_values_unchanged(self):
        # Powers of two and small integers are exactly representable.
        x = np.array([1.0, 2.0, -4.0, 0.5, 0.0, 136.0])
        np.testing.assert_array_equal(quantize_bf16(x), x)

    def test_mantissa_truncated_to_8_bits(self):
        # 1 + 2^-9 is between bf16 neighbors 1.0 and 1+2^-7; rounds to 1.
        assert quantize_bf16(np.array([1.0 + 2.0**-9]))[0] == 1.0

    def test_round_to_nearest_even(self):
        # Exactly halfway: 1 + 2^-8 sits between 1.0 and 1 + 2^-7.
        # Nearest-even keeps the even mantissa (1.0).
        assert quantize_bf16(np.array([1.0 + 2.0**-8]))[0] == 1.0
        # Just above halfway rounds up.
        assert quantize_bf16(np.array([1.0 + 2.0**-8 + 2.0**-12]))[0] == 1.0 + 2.0**-7

    def test_relative_error_bounded_by_ulp(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000) * 10.0 ** rng.integers(-10, 10, size=1000)
        q = quantize_bf16(x)
        err = np.abs(q - x)
        bound = np.array([bf16_ulp(float(v)) for v in x])
        assert (err <= bound + 1e-45).all()

    def test_nan_and_inf_preserved(self):
        x = np.array([np.nan, np.inf, -np.inf])
        q = quantize_bf16(x)
        assert np.isnan(q[0])
        assert q[1] == np.inf and q[2] == -np.inf

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        once = quantize_bf16(x)
        np.testing.assert_array_equal(quantize_bf16(once), once)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-1e30, 1e30, allow_nan=False))
    def test_property_monotone(self, x):
        """Quantization preserves ordering against its neighbors."""
        q = float(quantize_bf16(np.array([x]))[0])
        assert abs(q - x) <= bf16_ulp(x) + 1e-45


class TestLossScaler:
    def test_unscale_divides_by_scale(self):
        scaler = LossScaler(init_scale=8.0)
        out = scaler.check_and_unscale({"g": np.array([16.0])})
        np.testing.assert_array_equal(out["g"], [2.0])

    def test_overflow_skips_and_backs_off(self):
        scaler = LossScaler(init_scale=8.0)
        out = scaler.check_and_unscale({"g": np.array([np.inf])})
        assert out is None
        assert scaler.scale == 4.0
        assert scaler.steps_skipped == 1

    def test_growth_after_interval(self):
        scaler = LossScaler(init_scale=2.0, growth_interval=3)
        for _ in range(3):
            scaler.check_and_unscale({"g": np.ones(1)})
        assert scaler.scale == 4.0

    def test_scale_floor(self):
        scaler = LossScaler(init_scale=2.0, min_scale=1.0)
        for _ in range(5):
            scaler.check_and_unscale({"g": np.array([np.nan])})
        assert scaler.scale == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LossScaler(init_scale=0.0)


class TestMixedPrecisionTraining:
    def _setup(self, seed=0):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        model = GPTModel(cfg, seed=seed)
        corpus = SyntheticCorpus(32, branching=2, seed=seed)
        return cfg, model, corpus

    def test_converges_under_bf16(self):
        _, model, corpus = self._setup()
        trainer = MixedPrecisionTrainer(model, corpus, lr=5e-3)
        result = trainer.train(60, batch_size=4, seq_len=16)
        assert result.final_loss() < np.mean(result.losses[:5]) * 0.8

    def test_fpdt_equals_baseline_under_bf16(self):
        """The Fig.-14 equivalence holds in the realistic precision
        regime too: identical bf16 weights -> identical curves."""
        curves = {}
        for mode in ("baseline", "fpdt"):
            cfg, model, corpus = self._setup(seed=7)
            runner = None
            if mode == "fpdt":
                runner = FPDTModelRunner(
                    model, VirtualCluster(4), num_chunks=2, loss_chunks=2
                )
            trainer = MixedPrecisionTrainer(model, corpus, runner=runner, lr=5e-3)
            curves[mode] = trainer.train(10, batch_size=2, seq_len=16).losses
        np.testing.assert_allclose(curves["fpdt"], curves["baseline"], rtol=1e-8)

    def test_masters_stay_full_precision(self):
        """The working weights sit on the bf16 grid; the masters do not
        (they accumulate sub-ulp updates)."""
        _, model, corpus = self._setup(seed=2)
        trainer = MixedPrecisionTrainer(model, corpus, lr=1e-3)
        trainer.train(3, batch_size=2, seq_len=8)
        working = model.all_params()["blocks.0.attn.wq"]
        np.testing.assert_array_equal(
            working, quantize_bf16(working).astype(float)
        )
        master = trainer.master["blocks.0.attn.wq"]
        assert not np.array_equal(master, quantize_bf16(master).astype(float))
