"""Bucketed gradient reduction: identical numerics at any bucket size,
measured memory spike shrinking with the bucket (§6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import bucketed_grad_allreduce, fused_grad_allreduce
from repro.runtime import VirtualCluster

from .helpers import rng


def _grads(seed, n_tensors=4, base=8):
    g = rng(seed)
    return {
        f"p{i}": g.normal(size=(base + i, base)) for i in range(n_tensors)
    }


def _per_rank(seed, world):
    return [_grads(seed + r) for r in range(world)]


def _expected_sum(per_rank):
    return {
        name: np.sum([g[name] for g in per_rank], axis=0) for name in per_rank[0]
    }


class TestBucketedReduceCorrectness:
    @pytest.mark.parametrize("bucket_bytes", [64, 512, 4096, 10**9])
    def test_sum_independent_of_bucket_size(self, bucket_bytes):
        per_rank = _per_rank(0, 4)
        expected = _expected_sum(per_rank)
        cluster = VirtualCluster(4)
        out = bucketed_grad_allreduce(cluster, per_rank, bucket_bytes=bucket_bytes)
        assert set(out) == set(expected)
        for name in out:
            np.testing.assert_allclose(out[name], expected[name], rtol=1e-12)
        cluster.check_no_leaks()

    def test_average_mode(self):
        per_rank = _per_rank(1, 2)
        cluster = VirtualCluster(2)
        out = bucketed_grad_allreduce(cluster, per_rank, bucket_bytes=10**9, average=True)
        expected = _expected_sum(per_rank)
        for name in out:
            np.testing.assert_allclose(out[name], expected[name] / 2, rtol=1e-12)

    def test_fused_equals_bucketed(self):
        per_rank = _per_rank(2, 2)
        c1, c2 = VirtualCluster(2), VirtualCluster(2)
        fused = fused_grad_allreduce(c1, per_rank)
        bucketed = bucketed_grad_allreduce(c2, per_rank, bucket_bytes=128)
        for name in fused:
            np.testing.assert_allclose(fused[name], bucketed[name], rtol=1e-12)

    def test_validation(self):
        cluster = VirtualCluster(2)
        with pytest.raises(ValueError, match="positive"):
            bucketed_grad_allreduce(cluster, _per_rank(0, 2), bucket_bytes=0)
        with pytest.raises(ValueError, match="expected 2"):
            bucketed_grad_allreduce(cluster, [_grads(0)], bucket_bytes=64)
        bad = _per_rank(0, 2)
        bad[1]["extra"] = np.zeros(3)
        with pytest.raises(ValueError, match="disagree"):
            bucketed_grad_allreduce(cluster, bad, bucket_bytes=64)

    @settings(max_examples=15, deadline=None)
    @given(
        bucket=st.integers(16, 8192),
        world=st.integers(1, 4),
        seed=st.integers(0, 100),
    )
    def test_property_bucket_invariance(self, bucket, world, seed):
        per_rank = _per_rank(seed, world)
        expected = _expected_sum(per_rank)
        out = bucketed_grad_allreduce(
            VirtualCluster(world), per_rank, bucket_bytes=bucket
        )
        for name in out:
            np.testing.assert_allclose(out[name], expected[name], rtol=1e-10)


class TestGradReduceMemorySpike:
    def test_fused_spike_exceeds_bucketed(self):
        """The §6 observation: the fused (single-bucket) reduction's peak
        dwarfs a small-bucket one."""
        per_rank = _per_rank(3, 2)
        c_fused, c_small = VirtualCluster(2), VirtualCluster(2)
        fused_grad_allreduce(c_fused, per_rank)
        bucketed_grad_allreduce(c_small, per_rank, bucket_bytes=256)
        assert c_fused.peak_hbm() > 2 * c_small.peak_hbm()

    def test_spike_monotone_in_bucket_size(self):
        per_rank = _per_rank(4, 2)
        peaks = []
        for bucket in (256, 2048, 10**9):
            cluster = VirtualCluster(2)
            bucketed_grad_allreduce(cluster, per_rank, bucket_bytes=bucket)
            peaks.append(cluster.peak_hbm())
        assert peaks[0] <= peaks[1] <= peaks[2]
        assert peaks[0] < peaks[2]

    def test_oversized_tensor_gets_own_bucket(self):
        """A tensor bigger than the bucket still reduces (own bucket)."""
        per_rank = [
            {"big": np.ones((100, 10)), "small": np.ones(4)} for _ in range(2)
        ]
        out = bucketed_grad_allreduce(VirtualCluster(2), per_rank, bucket_bytes=64)
        np.testing.assert_allclose(out["big"], 2 * np.ones((100, 10)))
