"""Reference-model tests: block gradients vs numerical differentiation,
config accounting, and end-to-end loss backprop for both architectures."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.models import (
    GPT_2_7B,
    GPT_13B,
    LLAMA_8B,
    LLAMA_70B,
    GPTModel,
    MODEL_ZOO,
    ModelConfig,
    TransformerBlock,
    tiny_gpt,
    tiny_llama,
)

from .helpers import numerical_grad, rng


class TestModelConfig:
    def test_zoo_contains_paper_models(self):
        assert set(MODEL_ZOO) == {
            "gpt-2.7b", "gpt-6.7b", "gpt-13b", "gpt-30b", "llama-8b", "llama-70b",
        }

    def test_param_counts_near_nominal(self):
        """Each config's parameter count should be within ~15% of its name."""
        nominal = {
            "gpt-2.7b": 2.7e9, "gpt-6.7b": 6.7e9, "gpt-13b": 13e9,
            "gpt-30b": 30e9, "llama-8b": 8e9, "llama-70b": 70e9,
        }
        for name, cfg in MODEL_ZOO.items():
            ratio = cfg.num_params() / nominal[name]
            assert 0.85 < ratio < 1.25, f"{name}: {cfg.num_params():.3e}"

    def test_head_dim(self):
        assert GPT_2_7B.head_dim == 80
        assert LLAMA_8B.head_dim == 128

    def test_gqa_geometry(self):
        assert LLAMA_8B.gqa_group_size == 4
        assert LLAMA_8B.kv_hidden_size == 1024
        assert GPT_13B.gqa_group_size == 1

    def test_invalid_arch_raises(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="x", arch="bert", hidden_size=8, num_layers=1,
                num_heads=2, num_kv_heads=2, ffn_hidden_size=16, vocab_size=10,
            )

    def test_indivisible_heads_raise(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="x", arch="gpt", hidden_size=10, num_layers=1,
                num_heads=3, num_kv_heads=3, ffn_hidden_size=16, vocab_size=10,
            )

    def test_tiny_configs_valid(self):
        assert tiny_gpt().arch == "gpt"
        assert tiny_llama().uses_rope
        assert tiny_llama().gqa_group_size == 2

    def test_tiny_model_num_params_matches_config_formula(self):
        for cfg in (tiny_gpt(), tiny_llama()):
            model = GPTModel(cfg)
            assert model.num_params() == cfg.num_params()


@pytest.mark.parametrize("cfg_factory", [tiny_gpt, tiny_llama], ids=["gpt", "llama"])
class TestTransformerBlock:
    def test_forward_shape(self, cfg_factory):
        cfg = cfg_factory()
        block = TransformerBlock(cfg, rng(0))
        x = rng(1).normal(size=(2, 6, cfg.hidden_size))
        y = block.forward(x)
        assert y.shape == x.shape

    def test_causality_of_block(self, cfg_factory):
        cfg = cfg_factory()
        block = TransformerBlock(cfg, rng(0))
        x = rng(1).normal(size=(1, 8, cfg.hidden_size))
        y1 = block.forward(x)
        x2 = x.copy()
        x2[:, 6:] += 1.0
        y2 = block.forward(x2)
        np.testing.assert_allclose(y1[:, :6], y2[:, :6], rtol=1e-10)

    def test_input_gradient_numerical(self, cfg_factory):
        cfg = cfg_factory(hidden_size=16, num_heads=2)
        block = TransformerBlock(cfg, rng(0))
        x = rng(1).normal(size=(1, 4, 16))
        dy = rng(2).normal(size=(1, 4, 16))
        block.forward(x)
        dx = block.backward(dy)

        def f(x_):
            return float((block.forward(x_) * dy).sum())

        np.testing.assert_allclose(dx, numerical_grad(f, x.copy()), rtol=1e-4, atol=1e-6)

    def test_weight_gradient_numerical(self, cfg_factory):
        cfg = cfg_factory(hidden_size=8, num_heads=2)
        block = TransformerBlock(cfg, rng(3))
        x = rng(4).normal(size=(1, 3, 8))
        dy = rng(5).normal(size=(1, 3, 8))
        block.forward(x)
        block.backward(dy)
        name = "attn.wq"
        analytic = block.grads[name]

        def f(w):
            block.params[name] = w
            return float((block.forward(x) * dy).sum())

        numeric = numerical_grad(f, block.params[name].copy())
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_backward_without_forward_raises(self, cfg_factory):
        block = TransformerBlock(cfg_factory(), rng(0))
        with pytest.raises(RuntimeError):
            block.backward(np.zeros((1, 2, block.config.hidden_size)))

    def test_bad_input_shape_raises(self, cfg_factory):
        block = TransformerBlock(cfg_factory(), rng(0))
        with pytest.raises(ShapeError):
            block.forward(np.zeros((3, block.config.hidden_size)))


@pytest.mark.parametrize("cfg_factory", [tiny_gpt, tiny_llama], ids=["gpt", "llama"])
class TestGPTModel:
    def test_loss_is_finite_and_near_uniform_at_init(self, cfg_factory):
        cfg = cfg_factory()
        model = GPTModel(cfg, seed=0)
        g = rng(1)
        tokens = g.integers(0, cfg.vocab_size, size=(2, 8))
        labels = g.integers(0, cfg.vocab_size, size=(2, 8))
        loss = model.forward_loss(tokens, labels)
        assert np.isfinite(loss)
        assert loss < 2.0 * np.log(cfg.vocab_size)

    def test_backward_produces_grad_for_every_param(self, cfg_factory):
        cfg = cfg_factory(num_layers=1)
        model = GPTModel(cfg, seed=0)
        g = rng(2)
        tokens = g.integers(0, cfg.vocab_size, size=(1, 6))
        labels = g.integers(0, cfg.vocab_size, size=(1, 6))
        model.forward_loss(tokens, labels)
        model.backward_loss()
        params = model.all_params()
        grads = model.all_grads()
        assert set(grads) == set(params)
        for name in params:
            assert grads[name].shape == params[name].shape, name

    def test_embedding_grad_numerical(self, cfg_factory):
        cfg = cfg_factory(hidden_size=8, num_heads=2, num_layers=1, vocab_size=11)
        model = GPTModel(cfg, seed=0)
        g = rng(3)
        tokens = g.integers(0, 11, size=(1, 4))
        labels = g.integers(0, 11, size=(1, 4))
        model.forward_loss(tokens, labels)
        model.backward_loss()
        analytic = model.grads["embed.table"]

        def f(table):
            model.params["embed.table"] = table
            return model.forward_loss(tokens, labels)

        numeric = numerical_grad(f, model.params["embed.table"].copy())
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_loss_chunks_do_not_change_loss_or_grads(self, cfg_factory):
        cfg = cfg_factory(num_layers=1)
        g = rng(4)
        tokens = g.integers(0, cfg.vocab_size, size=(1, 8))
        labels = g.integers(0, cfg.vocab_size, size=(1, 8))
        m1 = GPTModel(cfg, seed=7, loss_chunks=1)
        m2 = GPTModel(cfg, seed=7, loss_chunks=4)
        l1 = m1.forward_loss(tokens, labels)
        l2 = m2.forward_loss(tokens, labels)
        assert l1 == pytest.approx(l2, rel=1e-12)
        m1.backward_loss()
        m2.backward_loss()
        g1, g2 = m1.all_grads(), m2.all_grads()
        for name in g1:
            np.testing.assert_allclose(g2[name], g1[name], rtol=1e-9, atol=1e-11)

    def test_set_param_roundtrip(self, cfg_factory):
        model = GPTModel(cfg_factory(num_layers=2), seed=0)
        new = np.zeros_like(model.blocks[1].params["attn.wq"])
        model.set_param("blocks.1.attn.wq", new)
        assert model.blocks[1].params["attn.wq"] is new
        with pytest.raises(KeyError):
            model.set_param("blocks.1.missing", new)
        with pytest.raises(KeyError):
            model.set_param("nope", new)

    def test_bad_token_shape_raises(self, cfg_factory):
        model = GPTModel(cfg_factory(), seed=0)
        with pytest.raises(ShapeError):
            model.forward_hidden(np.zeros(4, dtype=int))


class TestGPTPositionTable:
    def test_sequence_longer_than_table_raises(self):
        cfg = tiny_gpt(max_position_embeddings=8)
        model = GPTModel(cfg, seed=0)
        tokens = np.zeros((1, 16), dtype=int)
        with pytest.raises(ShapeError):
            model.forward_hidden(tokens)

    def test_positions_affect_gpt_output(self):
        cfg = tiny_gpt()
        model = GPTModel(cfg, seed=0)
        tokens = rng(0).integers(0, cfg.vocab_size, size=(1, 4))
        h1 = model.forward_hidden(tokens, positions=np.arange(4))
        h2 = model.forward_hidden(tokens, positions=np.arange(10, 14))
        assert not np.allclose(h1, h2)
