"""USP (2D Ulysses x Ring) sequence parallelism.

The load-bearing property is the degenerate collapse: ``seq_parallel =
(world, 1)`` must be flat Ulysses **bitwise** — same loss bytes, same
gradient bytes, same per-device pool peaks — and ``(1, world)`` flat
Ring likewise.  Mixed factorizations fold different online-softmax
segment boundaries, so they are numerically (not bitwise) equal to the
reference.  The head-divisibility satellite rides here too: flat
Ulysses is capped at ``num_heads`` ranks and must say so naming the
group, while a USP mesh with a small-enough ulysses axis is the escape
hatch.
"""

import numpy as np
import pytest

from repro.models import GPTModel, tiny_llama
from repro.parallel import RingModelRunner, UlyssesModelRunner, USPModelRunner
from repro.runtime import VirtualCluster

from .helpers import rng

WORLD = 8
SEQ = 64


def _cfg(num_heads=8):
    return tiny_llama(
        hidden_size=32, num_heads=num_heads, num_kv_heads=4, num_layers=2
    )


def _data(cfg, seed=0):
    g = rng(seed)
    return (
        g.integers(0, cfg.vocab_size, size=(1, SEQ)),
        g.integers(0, cfg.vocab_size, size=(1, SEQ)),
    )


def _run(make_runner, cfg):
    tokens, labels = _data(cfg)
    model = GPTModel(cfg, seed=7)
    cluster = VirtualCluster(WORLD)
    runner = make_runner(model, cluster)
    loss, grads = runner.forward_backward(tokens, labels)
    peaks = tuple(d.hbm.peak for d in cluster.devices)
    cluster.check_no_leaks()
    return loss, grads, peaks


def _assert_bitwise(a, b):
    loss_a, grads_a, peaks_a = a
    loss_b, grads_b, peaks_b = b
    assert loss_a == loss_b  # exact float equality, not approx
    assert set(grads_a) == set(grads_b)
    for key in grads_a:
        assert grads_a[key].tobytes() == grads_b[key].tobytes(), key
    assert peaks_a == peaks_b


class TestDegenerateCollapse:
    def test_world_by_one_is_flat_ulysses_bitwise(self):
        cfg = _cfg()
        flat = _run(lambda m, c: UlyssesModelRunner(m, c), cfg)
        usp = _run(
            lambda m, c: USPModelRunner(m, c, seq_parallel=(WORLD, 1)), cfg
        )
        _assert_bitwise(flat, usp)

    def test_one_by_world_is_flat_ring_bitwise(self):
        cfg = _cfg()
        flat = _run(lambda m, c: RingModelRunner(m, c), cfg)
        usp = _run(
            lambda m, c: USPModelRunner(m, c, seq_parallel=(1, WORLD)), cfg
        )
        _assert_bitwise(flat, usp)


class TestMixedFactorizations:
    @pytest.mark.parametrize("mesh", [(2, 4), (4, 2)], ids=lambda m: f"{m[0]}x{m[1]}")
    def test_matches_reference_numerically(self, mesh):
        """2x4 and 4x2 meshes fold different segment boundaries than the
        flat layouts — numerically equal, not bitwise."""
        cfg = _cfg()
        ref_loss, ref_grads, _ = _run(lambda m, c: UlyssesModelRunner(m, c), cfg)
        u, r = mesh
        loss, grads, _ = _run(
            lambda m, c: USPModelRunner(m, c, seq_parallel=(u, r)), cfg
        )
        np.testing.assert_allclose(loss, ref_loss, rtol=1e-10)
        assert set(grads) == set(ref_grads)
        for key in ref_grads:
            np.testing.assert_allclose(
                grads[key], ref_grads[key], rtol=1e-7, atol=1e-9, err_msg=key
            )

    def test_mixed_meshes_are_run_to_run_deterministic(self):
        cfg = _cfg()
        make = lambda m, c: USPModelRunner(m, c, seq_parallel=(2, 4))
        _assert_bitwise(_run(make, cfg), _run(make, cfg))


class TestHeadDivisibility:
    def test_flat_ulysses_error_names_group_size_and_axis(self):
        """World 8 with 4 heads: flat Ulysses cannot scatter — the error
        names the offending sequence-parallel group, not a bare world."""
        cfg = _cfg(num_heads=4)
        with pytest.raises(ValueError, match=r"num_heads \(4\).*group size \(8, axis 'world'\)"):
            _run(lambda m, c: UlyssesModelRunner(m, c), cfg)

    def test_usp_mesh_error_names_mesh_axis(self):
        cfg = _cfg(num_heads=4)
        with pytest.raises(ValueError, match=r"group size \(8, axis 'usp\.ulysses0'\)"):
            _run(lambda m, c: USPModelRunner(m, c, seq_parallel=(8, 1)), cfg)

    def test_usp_is_the_head_count_escape_hatch(self):
        """The same (heads=4, world=8) point runs fine on a (4, 2) mesh:
        the ring axis absorbs the ranks heads cannot cover."""
        cfg = _cfg(num_heads=4)
        loss, grads, _ = _run(
            lambda m, c: USPModelRunner(m, c, seq_parallel=(4, 2)), cfg
        )
        assert np.isfinite(loss)
        ref_loss, ref_grads, _ = _run(lambda m, c: RingModelRunner(m, c), cfg)
        np.testing.assert_allclose(loss, ref_loss, rtol=1e-10)
        for key in ref_grads:
            np.testing.assert_allclose(
                grads[key], ref_grads[key], rtol=1e-7, atol=1e-9, err_msg=key
            )


class TestMeshValidation:
    def test_degrees_must_factor_world(self):
        cfg = _cfg()
        model = GPTModel(cfg, seed=7)
        with pytest.raises(ValueError, match=r"covers 6 ranks"):
            USPModelRunner(model, VirtualCluster(WORLD), seq_parallel=(3, 2))
        with pytest.raises(ValueError, match="must be >= 1"):
            USPModelRunner(model, VirtualCluster(WORLD), seq_parallel=(8, 0))
