"""Fault injection and chaos recovery.

The subsystem's contract has three legs, each tested here:

1. **Determinism** — a :class:`FaultPlan` draws every decision from
   ``(seed, kind, op ordinal)``, so the same seed over the same program
   injects the same faults, and two chaos runs are byte-comparable.
2. **Numerics invariance** — injected faults cost retries/trace events
   only; a faulty run's loss curve is bitwise equal to a clean run's.
3. **Recovery** — an injected mid-run crash plus checkpoint-restart
   reproduces the uninterrupted loss curve bitwise (the ``repro chaos``
   gate).
"""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.common.errors import InjectedCrash, PermanentFaultError
from repro.core.offload import ChunkCache
from repro.faults import ChaosRun, FaultInjector, FaultPlan, chaos_run, merge_stats
from repro.models import GPTModel, tiny_gpt
from repro.core.fpdt_model import FPDTModelRunner
from repro.profiler import profile_cluster
from repro.runtime import VirtualCluster
from repro.runtime.collectives import all_reduce
from repro.runtime.trace_analysis import summarize
from repro.telemetry import FaultRateMonitor, MemorySink, RunLogger
from repro.training import SyntheticCorpus, Trainer


def _tensors(cluster, n=8):
    return [
        dev.from_numpy(np.full(n, float(dev.rank)), DType.FP32, "x")
        for dev in cluster.devices
    ]


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=3, collective_rate=0.3, straggler_rate=0.2,
                      hbm_spike_rate=0.2)
        b = FaultPlan(seed=3, collective_rate=0.3, straggler_rate=0.2,
                      hbm_spike_rate=0.2)
        for i in range(50):
            assert a.failures_for("collective", i) == b.failures_for("collective", i)
            assert a.straggler_for(i, 4) == b.straggler_for(i, 4)
            assert a.spike_for(i, 4) == b.spike_for(i, 4)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=0, collective_rate=0.5)
        b = FaultPlan(seed=1, collective_rate=0.5)
        sched_a = [a.failures_for("collective", i) for i in range(100)]
        sched_b = [b.failures_for("collective", i) for i in range(100)]
        assert sched_a != sched_b

    def test_kinds_are_independent_streams(self):
        """Offload draws never perturb the collective stream: the same
        op ordinal is a different SeedSequence per kind."""
        plan = FaultPlan(seed=9, collective_rate=0.4, offload_rate=0.4)
        coll = [plan.failures_for("collective", i) for i in range(60)]
        off = [plan.failures_for("offload", i) for i in range(60)]
        assert coll != off

    def test_failures_capped_per_op(self):
        plan = FaultPlan(seed=0, collective_rate=1.0, max_failures_per_op=3)
        for i in range(10):
            assert plan.failures_for("collective", i) == 3

    def test_backoff_is_exponential(self):
        plan = FaultPlan(backoff_base_s=0.5, backoff_factor=3.0)
        assert plan.backoff(0) == 0.5
        assert plan.backoff(2) == pytest.approx(4.5)

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="collective_rate"):
            FaultPlan(collective_rate=1.5)
        with pytest.raises(ValueError, match="backoff"):
            FaultPlan(backoff_factor=0.5)


class TestFaultInjector:
    def test_transient_collective_fault_records_and_recovers(self):
        cluster = VirtualCluster(2)
        plan = FaultPlan(seed=0, collective_rate=1.0, max_failures_per_op=2)
        injector = FaultInjector(plan).attach(cluster)
        out = all_reduce(cluster, _tensors(cluster))
        # Numerics untouched despite the injected failures.
        np.testing.assert_array_equal(out[0].data, np.full(8, 1.0))
        summary = summarize(cluster.trace)
        assert summary.fault_count == 2
        assert summary.retry_count == 2
        assert summary.retry_backoff_s == pytest.approx(
            plan.backoff(0) + plan.backoff(1)
        )
        assert injector.stats()["retries"] == 2
        for t in out:
            t.free()

    def test_permanent_fault_after_retry_budget(self):
        cluster = VirtualCluster(2)
        plan = FaultPlan(seed=0, collective_rate=1.0,
                         max_failures_per_op=5, max_retries=2)
        FaultInjector(plan).attach(cluster)
        with pytest.raises(PermanentFaultError) as err:
            all_reduce(cluster, _tensors(cluster))
        assert err.value.kind == "collective"
        assert "all_reduce" in err.value.label

    def test_offload_transfer_faults_hit_chunk_cache(self):
        cluster = VirtualCluster(1)
        plan = FaultPlan(seed=0, offload_rate=1.0, max_failures_per_op=1)
        injector = FaultInjector(plan).attach(cluster)
        cache = ChunkCache(cluster)
        dev = cluster.devices[0]
        cache.store("k", dev.from_numpy(np.ones(4), DType.FP32, "k"), dev)
        fetched = cache.fetch("k", dev)
        np.testing.assert_array_equal(fetched.data, np.ones(4))
        fetched.free()
        cache.clear()
        assert injector.faults_injected["offload"] == 2  # store + fetch

    def test_hbm_spike_moves_peak_not_live(self):
        cluster = VirtualCluster(2)
        plan = FaultPlan(seed=0, hbm_spike_rate=1.0, hbm_spike_bytes=1 << 16)
        FaultInjector(plan).attach(cluster)
        out = all_reduce(cluster, _tensors(cluster))
        victim = [d for d in cluster.devices if d.hbm.peak >= (1 << 16)]
        assert victim, "no rank saw the pressure spike"
        for t in out:
            t.free()
        for dev in cluster.devices:
            dev.hbm.check_empty()  # spike bytes were charge-and-release

    def test_straggler_charges_extra_flops(self):
        cluster = VirtualCluster(2)
        plan = FaultPlan(seed=0, straggler_rate=1.0, straggler_flops=1e6)
        FaultInjector(plan).attach(cluster)
        out = all_reduce(cluster, _tensors(cluster))
        straggle = [e for e in cluster.trace.events
                    if e.kind == "compute" and "straggler" in e.label]
        assert straggle and straggle[0].flops == 1e6
        for t in out:
            t.free()

    def test_scheduled_crash(self):
        injector = FaultInjector(FaultPlan(crash_at_step=5))
        injector.on_step(4)
        with pytest.raises(InjectedCrash) as err:
            injector.on_step(5)
        assert err.value.step == 5
        assert injector.crashes == 1

    def test_fault_events_replay_in_simulated_time(self):
        """The profiler accepts fault/retry events and charges the
        retry backoff to the timeline (a group-wide retry is a
        barrier, so the makespan grows by at least the backoff)."""
        cluster = VirtualCluster(2)
        out = all_reduce(cluster, _tensors(cluster))
        clean_makespan = profile_cluster(cluster).makespan

        cluster2 = VirtualCluster(2)
        plan = FaultPlan(seed=0, collective_rate=1.0, max_failures_per_op=2,
                         backoff_base_s=0.25)
        FaultInjector(plan).attach(cluster2)
        out2 = all_reduce(cluster2, _tensors(cluster2))
        profile = profile_cluster(cluster2)
        backoff = plan.backoff(0) + plan.backoff(1)
        assert profile.makespan >= clean_makespan + backoff - 1e-9
        retry_events = [te for te in profile.timeline if te.event.kind == "retry"]
        assert len(retry_events) == 2
        assert profile.rollup().comm_time > 0
        for t in out + out2:
            t.free()

    def test_merge_stats(self):
        merged = merge_stats(
            {"faults_injected": {"collective": 2}, "total_faults": 2,
             "retries": 2, "backoff_s": 0.5, "crashes": 1},
            {"faults_injected": {"collective": 1, "offload": 3},
             "total_faults": 4, "retries": 3, "backoff_s": 0.25, "crashes": 0},
        )
        assert merged["faults_injected"] == {"collective": 3, "offload": 3}
        assert merged["total_faults"] == 6
        assert merged["retries"] == 5
        assert merged["backoff_s"] == pytest.approx(0.75)
        assert merged["crashes"] == 1


class TestFaultKeyRouteParity:
    """The injection key is the *logical* operation: a plan seeded
    against ``all_to_all`` must keep firing when a multi-node topology
    reroutes the exchange through the hierarchical two-stage path — the
    chaos schedule is topology-invariant even though the trace labels
    (``all_to_all_intra``/``_inter``) are not."""

    def _exchange(self, cluster):
        g = np.random.default_rng(0)
        tensors = [
            dev.from_numpy(g.normal(size=(1, 4, 16, 2)), DType.FP32, "x")
            for dev in cluster.devices
        ]
        from repro.runtime.collectives import all_to_all

        return all_to_all(cluster, tensors, split_axis=2, concat_axis=1)

    def _fault_schedule(self, cluster):
        return [
            (e.kind, e.label, e.rank)
            for e in cluster.trace.events
            if e.kind in ("fault", "retry")
        ]

    def test_same_plan_fires_on_flat_and_hierarchical_routes(self):
        from repro.hardware import make_cluster, paper_node_a100_80g

        def run(spec):
            cluster = VirtualCluster(8, spec=spec)
            plan = FaultPlan(seed=4, collective_rate=1.0, max_failures_per_op=1,
                             straggler_rate=1.0, hbm_spike_rate=0.5)
            injector = FaultInjector(plan).attach(cluster)
            outs = self._exchange(cluster)
            data = [o.data.copy() for o in outs]
            for o in outs:
                o.free()
            return cluster, injector, data

        flat_cluster, flat_inj, flat_data = run(None)
        spec = make_cluster(paper_node_a100_80g(), 8)  # 2 nodes
        hier_cluster, hier_inj, hier_data = run(spec)

        # The topology actually rerouted (and the flat run did not).
        hier_labels = [e.label for e in hier_cluster.trace.filter(kind="collective")]
        assert any("intra" in l for l in hier_labels)
        assert not any(
            "intra" in e.label for e in flat_cluster.trace.filter(kind="collective")
        )
        # Same schedule: identical fault/retry events (labels carry the
        # unified ``all_to_all:`` key), identical victims, same stats.
        flat_faults = self._fault_schedule(flat_cluster)
        assert flat_faults == self._fault_schedule(hier_cluster)
        assert all(":all_to_all:" in label for _, label, _ in flat_faults)
        assert flat_inj.stats() == hier_inj.stats()
        # Numerics invariance holds on both routes.
        for a, b in zip(flat_data, hier_data):
            np.testing.assert_array_equal(a, b)

    def test_explicit_hierarchical_call_shares_the_key(self):
        """Calling the two-stage collective directly with the flat tag
        draws from the same per-op stream: first-op failure counts
        match a flat first-op exactly."""
        from repro.runtime.collectives import hierarchical_all_to_all

        def first_op_faults(use_hier):
            cluster = VirtualCluster(8)
            plan = FaultPlan(seed=9, collective_rate=1.0, max_failures_per_op=2)
            FaultInjector(plan).attach(cluster)
            g = np.random.default_rng(1)
            tensors = [
                dev.from_numpy(g.normal(size=(1, 4, 16, 2)), DType.FP32, "x")
                for dev in cluster.devices
            ]
            if use_hier:
                outs = hierarchical_all_to_all(
                    cluster, tensors, split_axis=2, concat_axis=1,
                    gpus_per_node=4, tag="all2all",
                )
            else:
                from repro.runtime.collectives import all_to_all

                outs = all_to_all(cluster, tensors, split_axis=2, concat_axis=1)
            for o in outs:
                o.free()
            return self._fault_schedule(cluster)

        assert first_op_faults(True) == first_op_faults(False)


def _faulty_trainer(seed=11, plan=None, telemetry=None):
    cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
    model = GPTModel(cfg, seed=seed)
    corpus = SyntheticCorpus(cfg.vocab_size, branching=2, seed=seed)
    runner = FPDTModelRunner(
        model, VirtualCluster(2), num_chunks=2, offload=True, loss_chunks=2
    )
    if plan is not None:
        FaultInjector(plan).attach(runner.cluster)
    return Trainer(model, corpus, runner=runner, lr=5e-3, telemetry=telemetry)


class TestFaultsDuringTraining:
    PLAN = FaultPlan(seed=5, collective_rate=0.1, offload_rate=0.05,
                     straggler_rate=0.1, hbm_spike_rate=0.1)

    def test_faults_never_perturb_the_loss_curve(self):
        clean = _faulty_trainer().train(4, batch_size=2, seq_len=16).losses
        chaos = _faulty_trainer(plan=self.PLAN).train(
            4, batch_size=2, seq_len=16
        ).losses
        assert chaos == clean  # bitwise: same floats, not allclose

    def test_fault_schedule_is_deterministic_end_to_end(self):
        runs = []
        for _ in range(2):
            trainer = _faulty_trainer(plan=self.PLAN)
            trainer.train(4, batch_size=2, seq_len=16)
            injector = trainer.runner.cluster.fault_injector
            runs.append((trainer.result.losses, injector.stats()))
        assert runs[0] == runs[1]
        assert runs[0][1]["total_faults"] > 0  # the plan actually fired

    def test_telemetry_sees_fault_counters(self):
        logger = RunLogger(
            sinks=[MemorySink()],
            monitors=[FaultRateMonitor(max_retries_per_step=1)],
        )
        plan = FaultPlan(seed=5, collective_rate=0.5, max_failures_per_op=2)
        trainer = _faulty_trainer(plan=plan, telemetry=logger)
        trainer.train(3, batch_size=2, seq_len=16)
        summary = logger.finish(trainer.result)
        injector = trainer.runner.cluster.fault_injector
        assert summary["fault_count"] == injector.stats()["total_faults"]
        assert summary["retry_count"] == injector.retries
        assert summary["retry_backoff_s"] == pytest.approx(injector.backoff_s)
        assert logger.registry.counter(
            "fault_retries_total", ""
        ).value == injector.retries
        # Heavy per-step retry pressure trips the retry-storm monitor.
        assert any(a.monitor == "fault_rate" for a in logger.alerts)


class TestChaosRecovery:
    def test_crash_and_resume_reproduces_clean_curve_bitwise(self, tmp_path):
        run = chaos_run(6, seed=13, checkpoint_every=2, workdir=tmp_path)
        assert isinstance(run, ChaosRun)
        assert run.crash_at == 3
        assert run.resumed_from == 2
        assert run.fault_stats["crashes"] == 1
        assert run.fault_stats["total_faults"] > 0
        assert len(run.chaos_losses) == len(run.clean_losses) == 6
        assert run.chaos_losses == run.clean_losses  # bitwise
        assert run.bitwise_equal
        assert run.checkpoint is not None and run.checkpoint.exists()

    def test_no_crash_still_verifies_equivalence(self):
        plan = FaultPlan(seed=2, collective_rate=0.1, crash_at_step=None)
        run = chaos_run(4, plan=plan, seed=2, checkpoint_every=2)
        assert run.resumed_from is None
        assert run.bitwise_equal

    def test_crash_step_validation(self):
        with pytest.raises(ValueError, match="crash_at_step"):
            chaos_run(4, plan=FaultPlan(crash_at_step=9))
