"""KV-cached generation: equivalence with full recompute, determinism,
windowed decoding, and end-to-end quality after training."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.models.generate import KVCache, generate
from repro.training import SyntheticCorpus
from repro.training.trainer import Trainer

from .helpers import rng


def _full_recompute_next(model, tokens):
    """Next-token argmax by re-running the whole prefix (no cache)."""
    hidden = model.forward_hidden(tokens[None, :])
    model._cache = None
    logits = hidden[0, -1] @ model.params["embed.table"].T
    return int(np.argmax(logits))


@pytest.mark.parametrize(
    "cfg_factory",
    [
        pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32), id="gpt"),
        pytest.param(
            lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2, vocab_size=32),
            id="llama",
        ),
    ],
)
class TestCachedDecoding:
    def test_matches_full_recompute(self, cfg_factory):
        """Greedy cached decoding step-for-step equals re-encoding the
        growing prefix from scratch."""
        cfg = cfg_factory()
        model = GPTModel(cfg, seed=0)
        prompt = rng(1).integers(0, cfg.vocab_size, size=6)
        out = generate(model, prompt, max_new_tokens=5)
        # replay with full recompute
        seq = list(prompt)
        for _ in range(5):
            seq.append(_full_recompute_next(model, np.array(seq)))
        np.testing.assert_array_equal(out, np.array(seq))

    def test_greedy_deterministic(self, cfg_factory):
        cfg = cfg_factory()
        model = GPTModel(cfg, seed=0)
        prompt = rng(2).integers(0, cfg.vocab_size, size=4)
        a = generate(model, prompt, max_new_tokens=4)
        b = generate(model, prompt, max_new_tokens=4)
        np.testing.assert_array_equal(a, b)

    def test_sampling_reproducible_by_seed(self, cfg_factory):
        cfg = cfg_factory()
        model = GPTModel(cfg, seed=0)
        prompt = rng(3).integers(0, cfg.vocab_size, size=4)
        a = generate(model, prompt, max_new_tokens=6, temperature=1.0, seed=5)
        b = generate(model, prompt, max_new_tokens=6, temperature=1.0, seed=5)
        c = generate(model, prompt, max_new_tokens=6, temperature=1.0, seed=6)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


class TestGenerationBehavior:
    def test_output_contains_prompt(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        model = GPTModel(cfg, seed=0)
        prompt = np.array([3, 1, 4])
        out = generate(model, prompt, max_new_tokens=2)
        np.testing.assert_array_equal(out[:3], prompt)
        assert out.shape == (5,)

    def test_windowed_model_generates(self):
        cfg = tiny_llama(
            hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=1, vocab_size=32
        ).scaled(attention_window=4)
        model = GPTModel(cfg, seed=0)
        out = generate(model, np.arange(8) % 32, max_new_tokens=4)
        assert out.shape == (12,)

    def test_trained_model_follows_the_chain(self):
        """After training on the Markov corpus, greedy decoding follows
        valid transitions of the corpus kernel."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32)
        model = GPTModel(cfg, seed=0)
        corpus = SyntheticCorpus(32, branching=2, seed=0)
        Trainer(model, corpus, lr=5e-3).train(80, batch_size=4, seq_len=16)
        prompt = corpus.sample(4)
        out = generate(model, prompt, max_new_tokens=8)
        valid = sum(
            out[i + 1] in corpus.successors[out[i]] for i in range(3, len(out) - 1)
        )
        assert valid >= 6  # most greedy steps are legal transitions

    def test_gpt_position_table_limit(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, max_position_embeddings=8)
        model = GPTModel(cfg, seed=0)
        with pytest.raises(ShapeError):
            generate(model, np.zeros(6, dtype=int), max_new_tokens=5)

    def test_validation(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model = GPTModel(cfg, seed=0)
        with pytest.raises(ValueError):
            generate(model, np.zeros(2, dtype=int), max_new_tokens=0)
        with pytest.raises(ValueError):
            generate(model, np.zeros(2, dtype=int), max_new_tokens=1, temperature=-1)
        with pytest.raises(ShapeError):
            generate(model, np.zeros((2, 3), dtype=int), max_new_tokens=1)

    def test_kv_cache_growth(self):
        cache = KVCache(1)
        assert cache.seq_len == 0
        k = np.zeros((1, 3, 2, 4))
        cache.append(0, k, k)
        assert cache.seq_len == 3
        k2, _ = cache.append(0, np.ones((1, 1, 2, 4)), np.ones((1, 1, 2, 4)))
        assert cache.seq_len == 4
        assert k2.shape == (1, 4, 2, 4)
