"""KV-cached generation: equivalence with full recompute, determinism,
windowed decoding (including cache eviction), and end-to-end quality
after training."""

import numpy as np
import pytest

import repro.models.generate as generate_mod
from repro.common.errors import ShapeError
from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.models.generate import KVCache, forward_cached, generate
from repro.training import SyntheticCorpus
from repro.training.trainer import Trainer

from .helpers import rng


def _full_recompute_next(model, tokens):
    """Next-token argmax by re-running the whole prefix (no cache)."""
    hidden = model.forward_hidden(tokens[None, :])
    model._cache = None
    logits = hidden[0, -1] @ model.params["embed.table"].T
    return int(np.argmax(logits))


@pytest.mark.parametrize(
    "cfg_factory",
    [
        pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32), id="gpt"),
        pytest.param(
            lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2, vocab_size=32),
            id="llama",
        ),
    ],
)
class TestCachedDecoding:
    def test_matches_full_recompute(self, cfg_factory):
        """Greedy cached decoding step-for-step equals re-encoding the
        growing prefix from scratch."""
        cfg = cfg_factory()
        model = GPTModel(cfg, seed=0)
        prompt = rng(1).integers(0, cfg.vocab_size, size=6)
        out = generate(model, prompt, max_new_tokens=5)
        # replay with full recompute
        seq = list(prompt)
        for _ in range(5):
            seq.append(_full_recompute_next(model, np.array(seq)))
        np.testing.assert_array_equal(out, np.array(seq))

    def test_greedy_deterministic(self, cfg_factory):
        cfg = cfg_factory()
        model = GPTModel(cfg, seed=0)
        prompt = rng(2).integers(0, cfg.vocab_size, size=4)
        a = generate(model, prompt, max_new_tokens=4)
        b = generate(model, prompt, max_new_tokens=4)
        np.testing.assert_array_equal(a, b)

    def test_sampling_reproducible_by_seed(self, cfg_factory):
        cfg = cfg_factory()
        model = GPTModel(cfg, seed=0)
        prompt = rng(3).integers(0, cfg.vocab_size, size=4)
        a = generate(model, prompt, max_new_tokens=6, temperature=1.0, seed=5)
        b = generate(model, prompt, max_new_tokens=6, temperature=1.0, seed=5)
        c = generate(model, prompt, max_new_tokens=6, temperature=1.0, seed=6)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


class TestGenerationBehavior:
    def test_output_contains_prompt(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        model = GPTModel(cfg, seed=0)
        prompt = np.array([3, 1, 4])
        out = generate(model, prompt, max_new_tokens=2)
        np.testing.assert_array_equal(out[:3], prompt)
        assert out.shape == (5,)

    def test_windowed_model_generates(self):
        cfg = tiny_llama(
            hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=1, vocab_size=32
        ).scaled(attention_window=4)
        model = GPTModel(cfg, seed=0)
        out = generate(model, np.arange(8) % 32, max_new_tokens=4)
        assert out.shape == (12,)

    def test_trained_model_follows_the_chain(self):
        """After training on the Markov corpus, greedy decoding follows
        valid transitions of the corpus kernel."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32)
        model = GPTModel(cfg, seed=0)
        corpus = SyntheticCorpus(32, branching=2, seed=0)
        Trainer(model, corpus, lr=5e-3).train(80, batch_size=4, seq_len=16)
        prompt = corpus.sample(4)
        out = generate(model, prompt, max_new_tokens=8)
        valid = sum(
            out[i + 1] in corpus.successors[out[i]] for i in range(3, len(out) - 1)
        )
        assert valid >= 6  # most greedy steps are legal transitions

    def test_gpt_position_table_limit(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, max_position_embeddings=8)
        model = GPTModel(cfg, seed=0)
        with pytest.raises(ShapeError):
            generate(model, np.zeros(6, dtype=int), max_new_tokens=5)

    def test_validation(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model = GPTModel(cfg, seed=0)
        with pytest.raises(ValueError):
            generate(model, np.zeros(2, dtype=int), max_new_tokens=0)
        with pytest.raises(ValueError):
            generate(model, np.zeros(2, dtype=int), max_new_tokens=1, temperature=-1)
        with pytest.raises(ShapeError):
            generate(model, np.zeros((2, 3), dtype=int), max_new_tokens=1)

    def test_kv_cache_growth(self):
        cache = KVCache(1)
        assert cache.seq_len == 0
        k = np.zeros((1, 3, 2, 4))
        cache.append(0, k, k)
        assert cache.seq_len == 3
        k2, _ = cache.append(0, np.ones((1, 1, 2, 4)), np.ones((1, 1, 2, 4)))
        assert cache.seq_len == 4
        assert k2.shape == (1, 4, 2, 4)

    def test_empty_prompt_raises_shape_error(self):
        """An empty prompt is a documented ShapeError, not a bare NumPy
        failure out of ``positions.max()``."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        model = GPTModel(cfg, seed=0)
        with pytest.raises(ShapeError, match="at least one token"):
            generate(model, np.zeros(0, dtype=int), max_new_tokens=2)
        with pytest.raises(ShapeError, match="at least one"):
            forward_cached(
                model, np.zeros((1, 0), dtype=int), KVCache(len(model.blocks))
            )

    def test_no_forward_after_final_token(self, monkeypatch):
        """The final sampled token runs no extra forward: one prefill
        call plus one call per non-final decode step."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        model = GPTModel(cfg, seed=0)
        calls = []
        real = generate_mod.forward_cached
        monkeypatch.setattr(
            generate_mod, "forward_cached",
            lambda m, t, c: calls.append(t.shape) or real(m, t, c),
        )
        for budget in (1, 4):
            calls.clear()
            generate(model, np.array([3, 1, 4]), max_new_tokens=budget)
            assert len(calls) == 1 + (budget - 1)

    def test_generate_cache_stops_at_output_length(self):
        """The cache never grows past the returned sequence (the old
        code ran one forward too many)."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1,
                       max_position_embeddings=8)
        model = GPTModel(cfg, seed=0)
        # 5 prompt + 3 new = 8 positions: exactly the table; the extra
        # forward of the unfixed loop would need position 8 and raise.
        out = generate(model, np.zeros(5, dtype=int), max_new_tokens=3)
        assert out.shape == (8,)


class TestWindowedKVCacheEviction:
    """Sliding-window decode: the cache stays bounded and eviction is
    bitwise-invisible to the logits."""

    def _model(self, arch, window):
        if arch == "gpt":
            cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2,
                           vocab_size=32, max_position_embeddings=64)
        else:
            cfg = tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2,
                             num_layers=2, vocab_size=32)
        return GPTModel(cfg.scaled(attention_window=window), seed=0)

    def test_cache_is_bounded(self):
        """Decoding far past the window keeps ``cached_len`` bounded
        while ``seq_len`` keeps counting absolute positions."""
        model = self._model("llama", window=4)
        cache = KVCache(len(model.blocks), window=4)
        logits = forward_cached(model, np.zeros((1, 2), dtype=int), cache)
        for _ in range(20):
            nxt = int(np.argmax(logits[0]))
            logits = forward_cached(
                model, np.array([[nxt]], dtype=np.int64), cache
            )
        assert cache.seq_len == 22
        assert cache.cached_len <= 4
        assert cache.offset == cache.seq_len - cache.cached_len

    @pytest.mark.parametrize("arch", ["gpt", "llama"])
    def test_eviction_is_bitwise_invisible(self, arch):
        """Step-for-step logits of an evicting cache equal those of a
        never-evicting cache on the same windowed model."""
        model = self._model(arch, window=3)
        layers = len(model.blocks)
        evicting, unbounded = KVCache(layers, window=3), KVCache(layers)
        prompt = np.array([[5, 2, 7, 1]], dtype=np.int64)
        a = forward_cached(model, prompt, evicting)
        b = forward_cached(model, prompt, unbounded)
        for _ in range(12):
            np.testing.assert_array_equal(a, b)
            nxt = np.array([[int(np.argmax(a[0]))]], dtype=np.int64)
            a = forward_cached(model, nxt, evicting)
            b = forward_cached(model, nxt, unbounded)
        np.testing.assert_array_equal(a, b)
        assert evicting.cached_len < unbounded.cached_len

    @pytest.mark.parametrize("arch", ["gpt", "llama"])
    @pytest.mark.parametrize("window", [2, 3, 5])
    def test_matches_full_recompute_at_window_boundaries(self, arch, window):
        """Cached windowed decode equals re-encoding the whole growing
        prefix, stepping right across the eviction boundary — for both
        RoPE (llama) and absolute-position (gpt) configs."""
        model = self._model(arch, window=window)
        prompt = rng(7).integers(0, 32, size=window + 1)
        out = generate(model, prompt, max_new_tokens=window + 3)
        seq = list(prompt)
        for _ in range(window + 3):
            seq.append(_full_recompute_next(model, np.array(seq)))
        np.testing.assert_array_equal(out, np.array(seq))

    def test_restore_round_trip(self):
        """``KVCache.restore`` rebuilds a cache that continues decoding
        exactly where the original left off."""
        model = self._model("llama", window=4)
        layers = len(model.blocks)
        cache = KVCache(layers, window=4)
        forward_cached(model, np.array([[1, 2, 3, 4, 5]], dtype=np.int64), cache)
        restored = KVCache.restore(
            [k.copy() for k in cache.keys],
            [v.copy() for v in cache.values],
            offset=cache.offset, total=cache.seq_len, window=4,
        )
        step = np.array([[6]], dtype=np.int64)
        np.testing.assert_array_equal(
            forward_cached(model, step, cache),
            forward_cached(model, step, restored),
        )

    def test_window_validation(self):
        with pytest.raises(ValueError):
            KVCache(1, window=0)
