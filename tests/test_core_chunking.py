"""Tests for the rank-ordinal shuffle (Fig. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ShapeError
from repro.core.chunking import ChunkLayout, shard_sequence, unshard_sequence


class TestChunkLayout:
    def test_geometry(self):
        lay = ChunkLayout(s_global=64, world=4, num_chunks=4)
        assert lay.s_local == 16
        assert lay.chunk_len == 4
        assert lay.gathered_chunk_len == 16

    def test_indivisible_raises(self):
        with pytest.raises(ShapeError):
            ChunkLayout(s_global=30, world=4, num_chunks=4)

    def test_gathered_chunk_is_contiguous_global_segment(self):
        """The defining property: concatenating (rank 0..P-1)'s chunk i
        gives global positions [i*C, (i+1)*C)."""
        lay = ChunkLayout(s_global=48, world=4, num_chunks=3)
        for i in range(lay.num_chunks):
            gathered = np.concatenate(
                [lay.global_positions(r, i) for r in range(lay.world)]
            )
            expected = np.arange(i * lay.gathered_chunk_len, (i + 1) * lay.gathered_chunk_len)
            np.testing.assert_array_equal(gathered, expected)

    def test_shard_indices_partition_the_sequence(self):
        lay = ChunkLayout(s_global=40, world=2, num_chunks=5)
        all_idx = np.concatenate([lay.shard_indices(r) for r in range(2)])
        assert sorted(all_idx.tolist()) == list(range(40))

    def test_single_chunk_reduces_to_plain_sharding(self):
        """u=1 must degrade to the ordinary contiguous Ulysses layout."""
        lay = ChunkLayout(s_global=16, world=4, num_chunks=1)
        for r in range(4):
            np.testing.assert_array_equal(
                lay.shard_indices(r), np.arange(r * 4, (r + 1) * 4)
            )

    def test_gathered_offset(self):
        lay = ChunkLayout(s_global=64, world=4, num_chunks=4)
        assert [lay.gathered_offset(i) for i in range(4)] == [0, 16, 32, 48]

    def test_local_slice(self):
        lay = ChunkLayout(s_global=64, world=4, num_chunks=4)
        assert lay.local_slice(2) == slice(8, 12)

    def test_rank_out_of_range(self):
        lay = ChunkLayout(s_global=16, world=2, num_chunks=2)
        with pytest.raises(ShapeError):
            lay.global_positions(2, 0)
        with pytest.raises(ShapeError):
            lay.global_positions(0, 5)
        with pytest.raises(ShapeError):
            lay.gathered_offset(-1)


class TestShardUnshard:
    def test_roundtrip_tokens(self):
        lay = ChunkLayout(s_global=24, world=2, num_chunks=3)
        x = np.arange(48).reshape(2, 24)
        shards = shard_sequence(x, lay)
        out = unshard_sequence(shards, lay)
        np.testing.assert_array_equal(out, x)

    def test_roundtrip_hidden_states(self):
        lay = ChunkLayout(s_global=12, world=2, num_chunks=2)
        x = np.random.default_rng(0).normal(size=(1, 12, 5))
        out = unshard_sequence(shard_sequence(x, lay), lay)
        np.testing.assert_array_equal(out, x)

    def test_shard_content_matches_indices(self):
        lay = ChunkLayout(s_global=24, world=2, num_chunks=3)
        x = np.arange(24)[None, :]
        shards = shard_sequence(x, lay)
        for r in range(2):
            np.testing.assert_array_equal(shards[r][0], lay.shard_indices(r))

    def test_wrong_length_raises(self):
        lay = ChunkLayout(s_global=24, world=2, num_chunks=3)
        with pytest.raises(ShapeError):
            shard_sequence(np.zeros((1, 20)), lay)

    def test_wrong_shard_count_raises(self):
        lay = ChunkLayout(s_global=24, world=2, num_chunks=3)
        with pytest.raises(ShapeError):
            unshard_sequence([np.zeros((1, 12))], lay)

    @settings(max_examples=25, deadline=None)
    @given(
        world=st.integers(1, 6),
        chunks=st.integers(1, 6),
        per=st.integers(1, 5),
    )
    def test_property_shuffle_is_a_permutation(self, world, chunks, per):
        s = world * chunks * per
        lay = ChunkLayout(s_global=s, world=world, num_chunks=chunks)
        x = np.arange(s)[None, :]
        out = unshard_sequence(shard_sequence(x, lay), lay)
        np.testing.assert_array_equal(out, x)
