"""Hierarchical (two-stage) all-to-all: exact equivalence with the flat
collective, and the inter-node traffic reduction it exists for."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.dtypes import DType
from repro.common.errors import ShapeError
from repro.runtime import VirtualCluster
from repro.runtime.collectives import all_to_all, hierarchical_all_to_all

from .helpers import rng


def _tensors(cluster, arrays):
    return [
        dev.from_numpy(a, DType.BF16, "x") for dev, a in zip(cluster.devices, arrays)
    ]


class TestHierarchicalEquivalence:
    def test_matches_flat_all_to_all(self):
        world, per_node = 8, 4
        g = rng(0)
        arrays = [g.normal(size=(1, 4, 16, 3)) for _ in range(world)]
        c_flat, c_hier = VirtualCluster(world), VirtualCluster(world)
        flat = all_to_all(c_flat, _tensors(c_flat, arrays), split_axis=2, concat_axis=1)
        hier = hierarchical_all_to_all(
            c_hier, _tensors(c_hier, arrays),
            split_axis=2, concat_axis=1, gpus_per_node=per_node,
        )
        for a, b in zip(flat, hier):
            np.testing.assert_array_equal(a.data, b.data)

    def test_single_node_degrades_to_flat(self):
        world = 4
        g = rng(1)
        arrays = [g.normal(size=(1, 2, 8, 2)) for _ in range(world)]
        cluster = VirtualCluster(world)
        hierarchical_all_to_all(
            cluster, _tensors(cluster, arrays),
            split_axis=2, concat_axis=1, gpus_per_node=4,
        )
        # no intra/inter split recorded — it ran as a flat a2a
        labels = [e.label for e in cluster.trace.filter(kind="collective")]
        assert any(l.startswith("all_to_all:") for l in labels)
        assert not any("intra" in l for l in labels)

    @settings(max_examples=15, deadline=None)
    @given(
        nodes=st.integers(2, 3),
        per_node=st.integers(2, 4),
        seed=st.integers(0, 200),
    )
    def test_property_equivalence(self, nodes, per_node, seed):
        world = nodes * per_node
        g = rng(seed)
        arrays = [g.normal(size=(1, 2, world * 2, 2)) for _ in range(world)]
        c_flat, c_hier = VirtualCluster(world), VirtualCluster(world)
        flat = all_to_all(c_flat, _tensors(c_flat, arrays), split_axis=2, concat_axis=1)
        hier = hierarchical_all_to_all(
            c_hier, _tensors(c_hier, arrays),
            split_axis=2, concat_axis=1, gpus_per_node=per_node,
        )
        for a, b in zip(flat, hier):
            np.testing.assert_array_equal(a.data, b.data)

    def test_inverse_restores_layout(self):
        world, per_node = 8, 4
        g = rng(2)
        full = g.normal(size=(1, 16, 8, 2))
        cluster = VirtualCluster(world)
        shards = cluster.scatter(full, axis=1, dtype=DType.BF16, tag="x")
        fwd = hierarchical_all_to_all(
            cluster, shards, split_axis=2, concat_axis=1, gpus_per_node=per_node
        )
        back = hierarchical_all_to_all(
            cluster, fwd, split_axis=1, concat_axis=2, gpus_per_node=per_node
        )
        out = cluster.gather(back, axis=1, free=True)
        np.testing.assert_allclose(out, full, atol=1e-7)


class TestHierarchicalTraffic:
    def test_inter_node_bytes_below_flat_wire(self):
        """The point of the hierarchy: inter-node bytes per rank are a
        fraction of the flat collective's wire volume."""
        world, per_node = 8, 4
        g = rng(3)
        arrays = [g.normal(size=(1, 4, 16, 4)) for _ in range(world)]
        c_flat, c_hier = VirtualCluster(world), VirtualCluster(world)
        all_to_all(c_flat, _tensors(c_flat, arrays), split_axis=2, concat_axis=1)
        flat_wire = c_flat.trace.filter(kind="collective")[0].nbytes
        hierarchical_all_to_all(
            c_hier, _tensors(c_hier, arrays),
            split_axis=2, concat_axis=1, gpus_per_node=per_node,
        )
        inter = [
            e.nbytes for e in c_hier.trace.filter(kind="collective")
            if "inter" in e.label
        ][0]
        # flat: 7/8 of the tensor crosses some link, 4/8 inter-node;
        # hierarchical: the same 4/8 inter-node but aggregated — and the
        # recorded inter stage must not exceed the flat wire volume.
        assert inter <= flat_wire

    def test_validation(self):
        cluster = VirtualCluster(4)
        arrays = [np.zeros((1, 2, 8, 2)) for _ in range(4)]
        with pytest.raises(ShapeError):
            hierarchical_all_to_all(
                cluster, _tensors(cluster, arrays),
                split_axis=2, concat_axis=1, gpus_per_node=3,
            )
        t = _tensors(cluster, [np.zeros((1, 2, 6, 2))] * 4)
        with pytest.raises(ShapeError):
            hierarchical_all_to_all(
                cluster, t, split_axis=2, concat_axis=1, gpus_per_node=2,
            )


class TestAutoHierarchicalRouting:
    def test_spec_cluster_routes_hierarchically(self):
        """A cluster with a multi-node topology spec automatically uses
        the two-stage exchange; results are unchanged."""
        from repro.hardware import make_cluster, paper_node_a100_80g
        from repro.models import TransformerBlock, tiny_gpt
        from repro.parallel import ulysses_block_forward

        from .helpers import rng as _rng

        cfg = tiny_gpt(hidden_size=32, num_heads=8)
        block = TransformerBlock(cfg, _rng(0))
        x = _rng(1).normal(size=(1, 32, cfg.hidden_size))
        shards = np.split(x, 8, axis=1)

        plain = VirtualCluster(8)
        y_plain, _ = ulysses_block_forward(plain, block.params, cfg, shards)

        spec = make_cluster(paper_node_a100_80g(), 8)  # 2 nodes
        with_spec = VirtualCluster(8, spec=spec)
        y_spec, _ = ulysses_block_forward(with_spec, block.params, cfg, shards)

        for a, b in zip(y_plain, y_spec):
            np.testing.assert_array_equal(a, b)
        labels = [e.label for e in with_spec.trace.filter(kind="collective")]
        assert any("intra" in l for l in labels)
        assert any("inter" in l for l in labels)
        assert not any("intra" in e.label for e in plain.trace.filter(kind="collective"))

    def test_single_node_spec_stays_flat(self):
        from repro.hardware import make_cluster, paper_node_a100_80g

        spec = make_cluster(paper_node_a100_80g(), 4)
        cluster = VirtualCluster(4, spec=spec)
        arrays = [np.zeros((1, 2, 8, 2)) for _ in range(4)]
        all_to_all(cluster, _tensors(cluster, arrays), split_axis=2, concat_axis=1)
        labels = [e.label for e in cluster.trace.filter(kind="collective")]
        assert not any("intra" in l for l in labels)
