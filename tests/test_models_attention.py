"""Attention correctness: online/blockwise vs reference, gradients vs
numerical differentiation, and the chunk-offset causal semantics FPDT
relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ShapeError
from repro.models.attention import (
    OnlineSoftmaxState,
    attention_backward_reference,
    attention_block_backward,
    attention_forward_reference,
    compute_delta,
    finalize_online,
    online_attention_backward,
    online_attention_forward,
    online_block_update,
)

from .helpers import numerical_grad, rng


def _qkv(seed=0, b=1, s=8, h=2, d=4, sk=None):
    g = rng(seed)
    sk = sk if sk is not None else s
    return (
        g.normal(size=(b, s, h, d)),
        g.normal(size=(b, sk, h, d)),
        g.normal(size=(b, sk, h, d)),
    )


class TestReferenceAttention:
    def test_causal_mask_blocks_future(self):
        q, k, v = _qkv(0, s=6)
        o, _ = attention_forward_reference(q, k, v, causal=True)
        # Output at position 0 must equal v at position 0 (only itself visible).
        np.testing.assert_allclose(o[:, 0], v[:, 0], rtol=1e-12)

    def test_changing_future_tokens_does_not_change_past_output(self):
        q, k, v = _qkv(1, s=6)
        o1, _ = attention_forward_reference(q, k, v)
        k2, v2 = k.copy(), v.copy()
        k2[:, 4:] += 10.0
        v2[:, 4:] -= 5.0
        o2, _ = attention_forward_reference(q, k2, v2)
        np.testing.assert_allclose(o1[:, :4], o2[:, :4], rtol=1e-12)
        assert not np.allclose(o1[:, 5], o2[:, 5])

    def test_noncausal_rows_are_softmax_means(self):
        q, k, v = _qkv(2, s=4)
        o, cache = attention_forward_reference(q, k, v, causal=False)
        probs = cache[3]
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-12)

    def test_gradients_against_numerical(self):
        q, k, v = _qkv(3, s=5, h=1, d=3)
        do = rng(4).normal(size=q.shape)
        o, cache = attention_forward_reference(q, k, v)
        dq, dk, dv = attention_backward_reference(do, cache)

        def loss_wrt(name):
            def f(x):
                args = {"q": q, "k": k, "v": v}
                args[name] = x
                out, _ = attention_forward_reference(args["q"], args["k"], args["v"])
                return float((out * do).sum())
            return f

        np.testing.assert_allclose(dq, numerical_grad(loss_wrt("q"), q.copy()), rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(dk, numerical_grad(loss_wrt("k"), k.copy()), rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(dv, numerical_grad(loss_wrt("v"), v.copy()), rtol=1e-4, atol=1e-7)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            attention_forward_reference(np.zeros((2, 3, 4)), np.zeros((1, 2, 3, 4)), np.zeros((1, 2, 3, 4)))


class TestOnlineForward:
    @pytest.mark.parametrize("block_q,block_k", [(1, 1), (2, 3), (4, 4), (8, 2), (3, 8)])
    def test_matches_reference_all_block_sizes(self, block_q, block_k):
        q, k, v = _qkv(5, s=8)
        o_ref, _ = attention_forward_reference(q, k, v)
        o, _ = online_attention_forward(q, k, v, block_q=block_q, block_k=block_k)
        np.testing.assert_allclose(o, o_ref, rtol=1e-10, atol=1e-12)

    def test_noncausal_matches_reference(self):
        q, k, v = _qkv(6, s=6, sk=10)
        o_ref, _ = attention_forward_reference(q, k, v, causal=False)
        o, _ = online_attention_forward(q, k, v, block_q=2, block_k=3, causal=False)
        np.testing.assert_allclose(o, o_ref, rtol=1e-10, atol=1e-12)

    def test_lse_matches_direct_computation(self):
        q, k, v = _qkv(7, s=4, h=1)
        _, lse = online_attention_forward(q, k, v, block_k=2)
        scale = 1 / np.sqrt(q.shape[-1])
        scores = np.einsum("bqhd,bkhd->bhqk", q, k) * scale
        iq, ik = np.arange(4)[:, None], np.arange(4)[None, :]
        scores = np.where(ik > iq, -np.inf, scores)
        expected = np.log(np.exp(scores).sum(axis=-1))
        np.testing.assert_allclose(lse, expected, rtol=1e-10)

    def test_numerical_stability_large_scores(self):
        q, k, v = _qkv(8, s=4)
        o, _ = online_attention_forward(100.0 * q, 100.0 * k, v, block_k=2)
        assert np.isfinite(o).all()

    def test_update_rejects_above_diagonal_block(self):
        q, k, v = _qkv(9, s=2)
        state = OnlineSoftmaxState.zeros(1, 2, 2, 4)
        with pytest.raises(ShapeError, match="k_offset"):
            online_block_update(state, q, k, v, scale=0.5, q_offset=0, k_offset=2)

    def test_finalize_empty_state_raises(self):
        state = OnlineSoftmaxState.zeros(1, 2, 2, 4)
        with pytest.raises(ShapeError):
            finalize_online(state)

    @settings(max_examples=25, deadline=None)
    @given(
        s=st.integers(2, 12),
        block_q=st.integers(1, 12),
        block_k=st.integers(1, 12),
        seed=st.integers(0, 10_000),
    )
    def test_property_blockwise_invariance(self, s, block_q, block_k, seed):
        """Online attention equals reference for arbitrary sizes/blocks —
        the invariant FPDT's chunked schedule rests on."""
        q, k, v = _qkv(seed, s=s, h=1, d=4)
        o_ref, _ = attention_forward_reference(q, k, v)
        o, _ = online_attention_forward(q, k, v, block_q=block_q, block_k=block_k)
        np.testing.assert_allclose(o, o_ref, rtol=1e-8, atol=1e-10)


class TestOnlineBackward:
    @pytest.mark.parametrize("block_q,block_k", [(8, 8), (2, 2), (4, 2), (2, 4), (3, 5)])
    def test_matches_reference_backward(self, block_q, block_k):
        q, k, v = _qkv(10, s=8)
        do = rng(11).normal(size=q.shape)
        o_ref, cache = attention_forward_reference(q, k, v)
        dq_ref, dk_ref, dv_ref = attention_backward_reference(do, cache)
        o, lse = online_attention_forward(q, k, v, block_q=block_q, block_k=block_k)
        dq, dk, dv = online_attention_backward(
            q, k, v, o, do, lse, block_q=block_q, block_k=block_k
        )
        np.testing.assert_allclose(dq, dq_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(dk, dk_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(dv, dv_ref, rtol=1e-8, atol=1e-10)

    def test_noncausal_backward(self):
        q, k, v = _qkv(12, s=4, sk=6)
        do = rng(13).normal(size=q.shape)
        o_ref, cache = attention_forward_reference(q, k, v, causal=False)
        refs = attention_backward_reference(do, cache)
        o, lse = online_attention_forward(q, k, v, block_q=2, block_k=2, causal=False)
        outs = online_attention_backward(
            q, k, v, o, do, lse, block_q=2, block_k=2, causal=False
        )
        for got, ref in zip(outs, refs):
            np.testing.assert_allclose(got, ref, rtol=1e-8, atol=1e-10)

    def test_block_backward_partials_sum_to_total(self):
        """Summing per-(q,kv)-block partials reproduces full gradients —
        the accumulation FPDT's nested loop performs."""
        q, k, v = _qkv(14, s=6, h=1)
        do = rng(15).normal(size=q.shape)
        o, lse = online_attention_forward(q, k, v)
        delta = compute_delta(o, do)
        o_ref, cache = attention_forward_reference(q, k, v)
        dq_ref, dk_ref, dv_ref = attention_backward_reference(do, cache)
        scale = 1 / np.sqrt(q.shape[-1])
        dq = np.zeros_like(q)
        dk = np.zeros_like(k)
        dv = np.zeros_like(v)
        step = 2
        for k0 in range(0, 6, step):
            for q0 in range(k0, 6, step):
                dq_p, dk_p, dv_p = attention_block_backward(
                    q[:, q0:q0 + step], k[:, k0:k0 + step], v[:, k0:k0 + step],
                    do[:, q0:q0 + step], lse[:, :, q0:q0 + step], delta[:, :, q0:q0 + step],
                    scale=scale, q_offset=q0, k_offset=k0,
                )
                dq[:, q0:q0 + step] += dq_p
                dk[:, k0:k0 + step] += dk_p
                dv[:, k0:k0 + step] += dv_p
        np.testing.assert_allclose(dq, dq_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(dk, dk_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(dv, dv_ref, rtol=1e-8, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        s=st.integers(2, 10),
        block=st.integers(1, 10),
        seed=st.integers(0, 10_000),
    )
    def test_property_backward_blockwise_invariance(self, s, block, seed):
        q, k, v = _qkv(seed, s=s, h=1, d=4)
        do = rng(seed + 1).normal(size=q.shape)
        o_ref, cache = attention_forward_reference(q, k, v)
        refs = attention_backward_reference(do, cache)
        o, lse = online_attention_forward(q, k, v, block_q=block, block_k=block)
        outs = online_attention_backward(q, k, v, o, do, lse, block_q=block, block_k=block)
        for got, ref in zip(outs, refs):
            np.testing.assert_allclose(got, ref, rtol=1e-7, atol=1e-9)


class TestChunkOffsets:
    def test_offset_blocks_reproduce_global_attention(self):
        """Computing attention of global chunk m against chunks 0..m with
        explicit offsets (the Fig. 5 schedule) equals slicing the global
        result — the core FPDT correctness property at kernel level."""
        b, s, h, d = 1, 12, 2, 4
        chunk = 4
        q, k, v = _qkv(20, s=s, h=h, d=d)
        o_ref, _ = attention_forward_reference(q, k, v)
        scale = 1 / np.sqrt(d)
        for m in range(s // chunk):
            q0 = m * chunk
            state = OnlineSoftmaxState.zeros(b, chunk, h, d)
            for j in range(m + 1):
                k0 = j * chunk
                online_block_update(
                    state, q[:, q0:q0 + chunk], k[:, k0:k0 + chunk], v[:, k0:k0 + chunk],
                    scale=scale, q_offset=q0, k_offset=k0,
                )
            o_chunk, _ = finalize_online(state)
            np.testing.assert_allclose(o_chunk, o_ref[:, q0:q0 + chunk], rtol=1e-10, atol=1e-12)

    def test_diagonal_chunk_is_masked_strictly(self):
        """Within the diagonal chunk the mask must still apply element-wise."""
        q, k, v = _qkv(21, s=4)
        state = OnlineSoftmaxState.zeros(1, 4, 2, 4)
        online_block_update(state, q, k, v, scale=0.5, q_offset=0, k_offset=0)
        o, _ = finalize_online(state)
        np.testing.assert_allclose(o[:, 0], v[:, 0], rtol=1e-12)
