"""Metric instruments, the registry, and the sinks they feed."""

import csv
import json

import pytest

from repro.telemetry import (
    CSVSink,
    Counter,
    Gauge,
    Histogram,
    JSONLSink,
    MemorySink,
    MetricsRegistry,
    PrometheusTextSink,
    Timer,
    flatten_record,
    sanitize_metric_name,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("tokens")
        c.inc(3)
        c.inc()
        assert c.sample() == 4.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("tokens").inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge("loss")
        g.set(2.5)
        g.inc(-0.5)
        assert g.sample() == 2.0

    def test_histogram_summary(self):
        h = Histogram("norms")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        s = h.sample()
        assert s["count"] == 4 and s["sum"] == 10.0
        assert (s["min"], s["max"], s["mean"]) == (1.0, 4.0, 2.5)
        assert s["p50"] == 2.0 and s["p99"] == 4.0

    def test_histogram_empty_sample(self):
        assert Histogram("x").sample()["count"] == 0
        assert Histogram("x").quantile(0.5) == 0.0

    def test_histogram_quantile_validation(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_timer_uses_injected_clock(self):
        ticks = iter([10.0, 13.5])
        t = Timer("step", clock=lambda: next(ticks))
        with t.time():
            pass
        assert t.values == [3.5]

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("a.b/c d") == "a_b_c_d"
        assert sanitize_metric_name("9lives").startswith("_")
        assert sanitize_metric_name("") == "_"


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_timer_is_not_a_plain_histogram(self):
        reg = MetricsRegistry()
        reg.timer("t")
        with pytest.raises(ValueError):
            reg.histogram("t")

    def test_snapshot_and_names(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc(2)
        reg.gauge("loss").set(1.5)
        reg.histogram("norm").observe(3.0)
        assert reg.names() == ["loss", "norm", "steps"]
        snap = reg.snapshot()
        assert snap["steps"] == 2.0 and snap["loss"] == 1.5
        assert snap["norm"]["count"] == 1

    def test_flush_emits_metrics_record_to_sinks(self):
        reg = MetricsRegistry()
        sink = MemorySink()
        reg.register_sink(sink)
        reg.counter("steps").inc()
        record = reg.flush(step=4)
        assert sink.records == [record]
        assert record["record"] == "metrics" and record["step"] == 4
        assert record["metrics"]["steps"] == 1.0

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("tokens_total", "tokens seen").inc(128)
        reg.gauge("loss").set(0.5)
        reg.histogram("step_seconds").observe(0.25)
        text = reg.prometheus_text()
        assert "# TYPE tokens_total counter" in text
        assert "tokens_total 128" in text
        assert "# HELP tokens_total tokens seen" in text
        assert "# TYPE loss gauge" in text
        assert "# TYPE step_seconds summary" in text
        assert 'step_seconds{quantile="0.5"} 0.25' in text
        assert "step_seconds_count 1" in text
        assert text.endswith("\n")


class TestSinks:
    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "log.jsonl"  # parent dir auto-created
        sink = JSONLSink(path)
        sink.emit({"record": "step", "loss": 1.0})
        sink.emit({"record": "run_summary", "steps": 1})
        sink.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["loss"] == 1.0
        assert lines[1]["record"] == "run_summary"

    def test_jsonl_sink_emit_after_close_raises(self, tmp_path):
        sink = JSONLSink(tmp_path / "log.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.emit({})

    def test_csv_sink_flattens_and_fixes_header(self, tmp_path):
        path = tmp_path / "log.csv"
        sink = CSVSink(path)
        sink.emit({"record": "step", "loss": 1.0,
                   "hbm_live_bytes": [10, 20], "nested": {"a": 1}})
        # Later records: unknown columns dropped, missing ones blanked.
        sink.emit({"record": "step", "loss": 0.5, "surprise": 9})
        sink.close()
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["hbm_live_bytes[0]"] == "10"
        assert rows[0]["nested.a"] == "1"
        assert rows[1]["loss"] == "0.5"
        assert rows[1]["hbm_live_bytes[1]"] == ""
        assert "surprise" not in rows[1]

    def test_prometheus_text_sink_rewrites_file(self, tmp_path):
        reg = MetricsRegistry()
        path = tmp_path / "train.prom"
        sink = PrometheusTextSink(path, reg)
        reg.gauge("loss").set(2.0)
        sink.emit({})
        assert "loss 2" in path.read_text()
        reg.gauge("loss").set(1.0)
        sink.close()  # close re-renders the freshest state
        assert "loss 1" in path.read_text()

    def test_flatten_record(self):
        flat = flatten_record({
            "a": 1,
            "b": {"c": 2, "d": {"e": 3}},
            "l": [4, {"f": 5}],
        })
        assert flat == {"a": 1, "b.c": 2, "b.d.e": 3, "l[0]": 4, "l[1].f": 5}
