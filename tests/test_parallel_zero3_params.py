"""ZeRO-3 parameter store: gather/release lifecycle with byte accounting."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.parallel import Zero3ParamStore, gathered_params
from repro.runtime import VirtualCluster

from .helpers import rng


def _params(seed=0):
    g = rng(seed)
    return {
        "blocks.0.attn.wq": g.normal(size=(8, 8)),
        "blocks.0.ffn.w1": g.normal(size=(8, 16)),
        "blocks.1.attn.wq": g.normal(size=(8, 8)),
        "embed.table": g.normal(size=(20, 8)),
    }


class TestZero3ParamStore:
    def test_gather_reconstructs_values(self):
        params = _params()
        cluster = VirtualCluster(4)
        store = Zero3ParamStore(cluster, params)
        gathered = store.gather("blocks.0.")
        np.testing.assert_allclose(gathered["blocks.0.attn.wq"], params["blocks.0.attn.wq"])
        np.testing.assert_allclose(gathered["blocks.0.ffn.w1"], params["blocks.0.ffn.w1"])
        store.release("blocks.0.")

    def test_resting_state_is_sharded(self):
        """At rest each rank holds ~1/P of the parameter bytes."""
        params = _params()
        cluster = VirtualCluster(4)
        store = Zero3ParamStore(cluster, params)
        total = sum(v.size for v in params.values()) * 2  # bf16 accounting
        for rank in range(4):
            assert store.shard_bytes(rank) == pytest.approx(total / 4, rel=0.1)

    def test_gather_charges_every_rank(self):
        params = _params()
        cluster = VirtualCluster(4)
        store = Zero3ParamStore(cluster, params)
        before = cluster.devices[0].hbm.in_use
        store.gather("blocks.1.")
        layer_bytes = params["blocks.1.attn.wq"].size * 2
        for dev in cluster.devices:
            assert dev.hbm.in_use == before + layer_bytes
        store.release("blocks.1.")
        assert cluster.devices[0].hbm.in_use == before

    def test_double_gather_raises(self):
        store = Zero3ParamStore(VirtualCluster(2), _params())
        store.gather("embed.")
        with pytest.raises(ShapeError, match="already gathered"):
            store.gather("embed.")
        store.release("embed.")

    def test_release_without_gather_raises(self):
        store = Zero3ParamStore(VirtualCluster(2), _params())
        with pytest.raises(KeyError):
            store.release("blocks.0.")

    def test_unknown_prefix_raises(self):
        store = Zero3ParamStore(VirtualCluster(2), _params())
        with pytest.raises(KeyError):
            store.gather("decoder.")

    def test_update_roundtrip(self):
        params = _params()
        cluster = VirtualCluster(4)
        store = Zero3ParamStore(cluster, params)
        new = np.full_like(params["blocks.0.attn.wq"], 3.5)
        store.update("blocks.0.attn.wq", new)
        gathered = store.gather("blocks.0.attn.wq")
        np.testing.assert_allclose(gathered["blocks.0.attn.wq"], new)
        store.release("blocks.0.attn.wq")

    def test_update_shape_check(self):
        store = Zero3ParamStore(VirtualCluster(2), _params())
        with pytest.raises(ShapeError):
            store.update("embed.table", np.zeros((3, 3)))

    def test_context_manager_releases_on_exception(self):
        params = _params()
        cluster = VirtualCluster(2)
        store = Zero3ParamStore(cluster, params)
        baseline = cluster.devices[0].hbm.in_use
        with pytest.raises(RuntimeError):
            with gathered_params(store, "blocks.0."):
                raise RuntimeError("OOM mid-layer")
        assert cluster.devices[0].hbm.in_use == baseline

    def test_free_releases_all(self):
        cluster = VirtualCluster(2)
        store = Zero3ParamStore(cluster, _params())
        store.gather("embed.")
        store.free()
        cluster.check_no_leaks()

    def test_gather_traffic_recorded(self):
        cluster = VirtualCluster(4)
        store = Zero3ParamStore(cluster, _params())
        store.gather("blocks.0.")
        events = cluster.trace.filter(kind="collective", label_prefix="all_gather:zero.param")
        assert len(events) == 2  # wq + w1
        store.release("blocks.0.")
