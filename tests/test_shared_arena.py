"""Shared-memory segments under the process executor.

The :class:`SharedArena` is the process backend's backing store: arena
buffers big enough to cross a fork-join live in ``/dev/shm`` segments so
worker processes can read and write them in place, and each child stages
its large result arrays into a segment the parent adopts at the join.
These tests pin the leak discipline (``/dev/shm`` ends every test
empty — even when the interpreter exits without cleanup), the aliasing
rules (only whole dedicated segments are ever recycled), and the
loudness of use-after-release across the fork boundary.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.runtime import shuttle
from repro.runtime.arena import BufferArena, SharedArena, shared_segments
from repro.runtime.executor import RankExecutor, executor, reset_executor
from repro.runtime.memory import MemoryPool
from repro.runtime.tensor import DeviceTensor

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process backend needs os.fork"
)

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)


@pytest.fixture(autouse=True)
def _clean_global_executor():
    reset_executor()
    yield
    reset_executor()


def _shm_entries() -> list[str]:
    """Live ``/dev/shm`` names carrying this process's segment prefix."""
    return glob.glob(f"/dev/shm/repro-shm-{os.getpid()}-*")


# ---------------------------------------------------------------------------
# SharedArena: segment lifecycle and aliasing rules
# ---------------------------------------------------------------------------


@needs_dev_shm
def test_parent_segments_are_unlinked_at_birth():
    """A parent-created segment must never have a window where a crash
    could leak its name: create() unlinks before returning."""
    arena = SharedArena()
    name, base = arena.create(4096)
    assert base.nbytes == 4096
    assert not os.path.exists(f"/dev/shm/{name}")
    base[:] = 7  # the mapping survives the unlink
    assert int(base[0]) == 7
    del base
    arena.prune()


def test_view_and_locate_round_trip():
    arena = SharedArena()
    name, base = arena.create(1024)
    view = arena.view(name, 128, (16,), np.float64)
    view[:] = np.arange(16.0)
    # The same bytes through a second view: descriptor semantics.
    again = arena.view(name, 128, (16,), np.float64)
    assert again.tobytes() == view.tobytes()
    address = view.__array_interface__["data"][0]
    assert arena.locate(address, view.nbytes) == (name, 128)
    assert arena.locate(address, 4096) is None  # runs past the segment
    del view, again, base
    arena.prune()


def test_owns_block_accepts_only_whole_dedicated_segments():
    arena = SharedArena()
    whole = arena.new_array((256,), np.float64)
    assert arena.owns_block(whole)
    assert not arena.owns_block(whole[:128])  # partial view aliases the rest
    assert not arena.owns_block(np.empty(256))  # ordinary heap array
    del whole
    arena.prune()


def test_prune_retries_segments_with_live_exports():
    """A segment still referenced by a result array refuses to close and
    must survive — readable and writable — until the reference dies."""
    arena = SharedArena()
    view = arena.new_array((64,), np.float64)
    view[:] = 3.0
    assert arena.prune() == 0  # exported pointer: kept for later
    assert arena.active_segments == 1
    view[:] = 4.0  # the mapping stayed valid through the failed close
    assert float(view.sum()) == 4.0 * 64
    del view
    assert arena.prune() == 1
    assert arena.active_segments == 0


# ---------------------------------------------------------------------------
# BufferArena: the shm-backed rent path
# ---------------------------------------------------------------------------


@needs_fork
def test_rent_is_shm_backed_only_under_an_installed_process_executor():
    big = (shuttle.STAGE_MIN_BYTES // 8 + 1,)  # crosses the size threshold
    arena = BufferArena("test")
    plain = arena.rent(big, np.float64)
    segs = shared_segments(create=False)
    assert segs is None or not segs.owns_block(plain)
    with executor(workers=4, backend="process"):
        shared = arena.rent(big, np.float64)
        assert shared_segments().owns_block(shared)
        small = arena.rent((8,), np.float64)  # under the threshold: heap
        assert not shared_segments().owns_block(small)
    del plain, shared, small
    shared_segments().prune()


@needs_fork
def test_giveback_recycles_whole_segment_views():
    arena = BufferArena("test")
    shape = (shuttle.STAGE_MIN_BYTES // 8 + 1,)
    with executor(workers=4, backend="process"):
        buf = arena.rent(shape, np.float64)
        assert shared_segments().owns_block(buf)
        assert arena.giveback(buf)  # whole dedicated segment: recyclable
        warm = arena.rent(shape, np.float64)
        assert warm is buf  # served from the free list, not a new segment
        assert not arena.giveback(buf[: shape[0] // 2])  # views refused
        del warm
    del buf
    arena.clear()
    shared_segments().prune()


@needs_fork
def test_concurrent_rent_giveback_on_shared_segments_stays_consistent():
    """The serving threads hammer one arena while the process backend is
    installed; every rent must hand out a private buffer."""
    arena = BufferArena("stress", max_per_key=16)
    shape = (shuttle.STAGE_MIN_BYTES // 8,)
    errors: list[BaseException] = []
    with executor(workers=4, backend="process"):
        barrier = threading.Barrier(8)

        def body(i: int) -> None:
            barrier.wait()
            try:
                for _ in range(50):
                    buf = arena.rent(shape, np.float64)
                    buf.fill(i)
                    assert float(buf[0]) == float(i)  # nobody else wrote it
                    arena.giveback(buf)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=body, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    if errors:
        raise errors[0]
    stats = arena.stats()
    assert stats["hits"] + stats["misses"] == 8 * 50
    arena.clear()
    shared_segments().prune()


# ---------------------------------------------------------------------------
# Cross-fork semantics: release visibility and staging
# ---------------------------------------------------------------------------


@needs_fork
def test_child_release_is_loud_in_the_parent():
    """A tensor released inside a worker must be just as dead in the
    parent after the join: pool bytes returned, data gone."""
    pool = MemoryPool("host")
    tensors = [
        DeviceTensor(np.ones(64), DType.FP32, pool, f"t{r}") for r in range(4)
    ]
    ex = RankExecutor("process", workers=4)
    try:

        def release_mine(r: int) -> None:
            tensors[r].release()

        ex.rank_map(release_mine, 4)
    finally:
        ex.shutdown()
    assert pool.in_use == 0
    for t in tensors:
        assert t.data is None and not t.is_live
        with pytest.raises(RuntimeError, match="double free"):
            t.release()


@needs_fork
def test_lowered_staging_threshold_ships_small_results_as_descriptors(monkeypatch):
    """With the staging floor dropped to one byte, even tiny result
    arrays cross the pipe as segment descriptors — and still arrive
    byte-exact, in rank order."""
    monkeypatch.setattr(shuttle, "STAGE_MIN_BYTES", 1)
    ex = RankExecutor("process", workers=2)
    try:
        results = ex.rank_map(lambda r: np.full(8, float(r)), 4)
        stats = ex.stats()
    finally:
        ex.shutdown()
    for r, arr in enumerate(results):
        assert arr.tobytes() == np.full(8, float(r)).tobytes()
    assert stats["ipc_descriptors"] >= 4


# ---------------------------------------------------------------------------
# Leak discipline: /dev/shm ends every run empty
# ---------------------------------------------------------------------------


@needs_fork
@needs_dev_shm
def test_no_dev_shm_leak_after_reset_executor():
    arena = BufferArena("leaktest")
    shape = (shuttle.STAGE_MIN_BYTES // 8 + 1,)
    with executor(workers=4, backend="process") as ex:
        rented = arena.rent(shape, np.float64)
        ex.rank_map(lambda r: np.full(16_384, float(r)), 4)  # staging traffic
        del rented
    arena.clear()
    reset_executor()  # prunes the shared segments
    assert _shm_entries() == []


@needs_fork
@needs_dev_shm
def test_interpreter_exit_sweeps_orphans():
    """A process that runs fork-join work and exits *without* calling
    reset_executor must still leave ``/dev/shm`` clean (atexit sweep +
    unlink-at-birth discipline)."""
    script = (
        "import numpy as np\n"
        "from repro.runtime.executor import RankExecutor\n"
        "ex = RankExecutor('process', workers=2)\n"
        "ex.rank_map(lambda r: np.full(32_768, float(r)), 4)\n"
        "print('pid', __import__('os').getpid())\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=120, env=env, check=True,
    )
    pid = int(out.stdout.split()[-1])
    assert glob.glob(f"/dev/shm/repro-shm-{pid}-*") == []


@needs_fork
@needs_dev_shm
def test_pool_interpreter_exit_reaps_workers_and_sweeps_segments():
    """The persistent pool's exit discipline: a process that runs pooled
    sections and exits *without* calling shutdown must leave no orphan
    worker processes and no named ``/dev/shm`` segments (the pool's
    named task-board and stage segments outlive single sections, so the
    atexit teardown — quit, reap, unlink-named sweep — is what keeps
    interpreter exit clean)."""
    script = (
        "import os\n"
        "import numpy as np\n"
        "from repro.runtime.executor import RankExecutor\n"
        "ex = RankExecutor('process-pool', workers=2)\n"
        "pids = ex.rank_map(lambda r: os.getpid(), 4)\n"
        "ex.rank_map(lambda r: np.full(32_768, float(r)), 4)\n"
        "s = ex.stats()\n"
        "assert s['pool_reuses'] == 1 and s['fallback_forks'] == 0, s\n"
        "print('pid', os.getpid(), 'workers', *sorted(set(pids)))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=120, env=env, check=True,
    )
    fields = out.stdout.split()
    parent = int(fields[1])
    workers = [int(p) for p in fields[3:]]
    assert len(workers) == 2
    for pid in (parent, *workers):
        assert glob.glob(f"/dev/shm/repro-shm-{pid}-*") == []
    for pid in workers:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)  # reaped at exit: no orphan worker survives


# ---------------------------------------------------------------------------
# Fault injection forces the serial path (chaos stays bitwise-identical)
# ---------------------------------------------------------------------------


@needs_fork
def test_fault_injection_forces_serial_under_process_backend():
    """Fault injectors mutate shared schedule state mid-run; the cluster
    pins its rank loops serial so chaos runs are identical under every
    backend — including process."""
    from repro.faults import FaultInjector, FaultPlan
    from repro.runtime.device import VirtualCluster

    cluster = VirtualCluster(2)
    cluster.fault_injector = FaultInjector(FaultPlan())
    parent = os.getpid()
    with executor(workers=4, backend="process"):
        pids = cluster.rank_map(lambda r: os.getpid())
    assert pids == [parent] * 2
