"""Property-based tests (hypothesis) on the runtime substrate: collective
identities across arbitrary worlds/shapes, pool invariants, and the
communication-volume identities the paper's §2.2 comparison rests on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.dtypes import DType
from repro.core import ChunkLayout, fpdt_block_forward
from repro.core.chunking import shard_sequence
from repro.models import TransformerBlock, tiny_gpt
from repro.runtime import MemoryPool, VirtualCluster
from repro.runtime.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    reduce_scatter,
    ring_shift,
)
from repro.runtime.trace_analysis import alltoall_wire_bytes, summarize

from .helpers import rng


def _tensors(cluster, arrays):
    return [
        dev.from_numpy(a, DType.FP32, "t") for dev, a in zip(cluster.devices, arrays)
    ]


class TestCollectiveProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        world=st.integers(1, 6),
        rows=st.integers(1, 4),
        cols=st.integers(1, 5),
        seed=st.integers(0, 999),
    )
    def test_all_to_all_involution(self, world, rows, cols, seed):
        """a2a(split=0, concat=1) then a2a(split=1, concat=0) restores
        the originals for any world size and shape."""
        g = rng(seed)
        arrays = [g.normal(size=(rows * world, cols * world)) for _ in range(world)]
        cluster = VirtualCluster(world)
        fwd = all_to_all(cluster, _tensors(cluster, arrays), split_axis=0, concat_axis=1)
        back = all_to_all(cluster, fwd, split_axis=1, concat_axis=0)
        for orig, out in zip(arrays, back):
            np.testing.assert_allclose(out.data, orig)

    @settings(max_examples=20, deadline=None)
    @given(world=st.integers(1, 5), n=st.integers(1, 4), seed=st.integers(0, 999))
    def test_reduce_scatter_then_all_gather_is_allreduce(self, world, n, seed):
        g = rng(seed)
        arrays = [g.normal(size=(n * world, 3)) for _ in range(world)]
        total = np.sum(arrays, axis=0)
        cluster = VirtualCluster(world)
        shards = reduce_scatter(cluster, _tensors(cluster, arrays), axis=0)
        gathered = all_gather(cluster, shards, axis=0)
        for out in gathered:
            np.testing.assert_allclose(out.data, total, rtol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(world=st.integers(1, 5), seed=st.integers(0, 999))
    def test_all_reduce_equals_numpy_sum(self, world, seed):
        g = rng(seed)
        arrays = [g.normal(size=(4,)) for _ in range(world)]
        cluster = VirtualCluster(world)
        outs = all_reduce(cluster, _tensors(cluster, arrays))
        for out in outs:
            np.testing.assert_allclose(out.data, np.sum(arrays, axis=0), rtol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(world=st.integers(1, 6), shift=st.integers(-7, 7), seed=st.integers(0, 99))
    def test_ring_shift_is_permutation(self, world, shift, seed):
        g = rng(seed)
        arrays = [g.normal(size=(2,)) for _ in range(world)]
        cluster = VirtualCluster(world)
        outs = ring_shift(cluster, _tensors(cluster, arrays), shift=shift)
        for r, out in enumerate(outs):
            np.testing.assert_array_equal(out.data, arrays[(r - shift) % world])


class TestPoolInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 100), min_size=1, max_size=12),
        seed=st.integers(0, 99),
    )
    def test_alloc_free_accounting_is_exact(self, sizes, seed):
        pool = MemoryPool("p")
        allocs = [pool.alloc(s) for s in sizes]
        assert pool.in_use == sum(sizes)
        assert pool.peak == sum(sizes)
        order = rng(seed).permutation(len(allocs))
        for i in order:
            pool.free(allocs[i])
        assert pool.in_use == 0
        pool.check_empty()

    @settings(max_examples=15, deadline=None)
    @given(sizes=st.lists(st.integers(1, 50), min_size=2, max_size=8))
    def test_peak_is_max_over_history(self, sizes):
        """Interleaved alloc/free: peak equals the max running sum."""
        pool = MemoryPool("p")
        running, peak_expected = 0, 0
        live = []
        for i, s in enumerate(sizes):
            live.append(pool.alloc(s))
            running += s
            peak_expected = max(peak_expected, running)
            if i % 2 == 1:
                a = live.pop(0)
                pool.free(a)
                running -= a.nbytes
        assert pool.peak == peak_expected


class TestCommunicationVolumeIdentities:
    def _fpdt_wire_bytes(self, num_chunks):
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block = TransformerBlock(cfg, rng(0))
        x = rng(1).normal(size=(1, 64, cfg.hidden_size))
        layout = ChunkLayout(64, 4, num_chunks)
        cluster = VirtualCluster(4)
        _, ctx = fpdt_block_forward(
            cluster, block.params, cfg, layout, shard_sequence(x, layout)
        )
        ctx.attn_ctx.release()
        return alltoall_wire_bytes(cluster.trace)

    def test_ulysses_constant_volume_under_chunking(self):
        """DeepSpeed-Ulysses' headline property, inherited by FPDT: the
        total all-to-all volume per device is *independent of the chunk
        count* — chunking splits the messages without adding bytes."""
        volumes = {u: self._fpdt_wire_bytes(u) for u in (1, 2, 4, 8)}
        assert len(set(volumes.values())) == 1

    def test_summarize_totals(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4)
        block = TransformerBlock(cfg, rng(0))
        x = rng(1).normal(size=(1, 64, cfg.hidden_size))
        layout = ChunkLayout(64, 4, 4)
        cluster = VirtualCluster(4)
        _, ctx = fpdt_block_forward(
            cluster, block.params, cfg, layout, shard_sequence(x, layout)
        )
        ctx.attn_ctx.release()
        summary = summarize(cluster.trace)
        assert summary.collective_count["all_to_all"] == 16  # 4 per chunk
        assert summary.d2h_bytes > 0  # chunk offloads
        assert summary.compute_flops > 0
        assert summary.comm_to_compute_ratio() > 0

    def test_ratio_requires_compute(self):
        from repro.runtime.trace_analysis import TraceSummary

        with pytest.raises(ValueError):
            TraceSummary().comm_to_compute_ratio()
