"""Rank-executor unit tests: dispatch semantics, selection, thread safety.

The bitwise on/off equivalence of whole training strategies lives in
``test_executor_equivalence.py``; this file covers the executor itself —
rank ordering, the exception policy, nested calls, env/context
selection, trace buffering — plus the runtime pieces the executor's
threads share: :class:`MemoryPool` and :class:`BufferArena` under
concurrent load, and the BLAS oversubscription guard.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.runtime.executor import (
    RankExecutor,
    clamp_blas_threads,
    executor,
    executor_stats,
    fold,
    get_executor,
    rank_map,
    reset_executor,
    set_executor,
)
from repro.runtime.memory import MemoryPool
from repro.runtime.trace import Trace

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process backend needs os.fork"
)


@pytest.fixture(autouse=True)
def _clean_global_executor():
    """Each test starts and ends without a process-wide executor."""
    reset_executor()
    yield
    reset_executor()


# ---------------------------------------------------------------------------
# rank_map semantics
# ---------------------------------------------------------------------------


def test_results_in_rank_order_even_when_ranks_finish_out_of_order():
    ex = RankExecutor("threads", workers=4)
    try:

        def slow_low_ranks(r: int) -> int:
            time.sleep(0.02 * (4 - r))  # rank 3 finishes first
            return r * 10

        assert ex.rank_map(slow_low_ranks, 4) == [0, 10, 20, 30]
    finally:
        ex.shutdown()


def test_serial_backend_matches_threads_results():
    serial = RankExecutor("serial", workers=1)
    threads = RankExecutor("threads", workers=4)
    try:
        fn = lambda r: (r, r**2)  # noqa: E731
        assert serial.rank_map(fn, 6) == threads.rank_map(fn, 6)
    finally:
        threads.shutdown()


def test_world_one_and_force_serial_run_inline():
    ex = RankExecutor("threads", workers=4)
    try:
        main_thread = threading.get_ident()
        seen: list[int] = []

        def record_thread(r: int) -> None:
            seen.append(threading.get_ident())

        ex.rank_map(record_thread, 1)
        ex.rank_map(record_thread, 3, force_serial=True)
        assert seen == [main_thread] * 4
        assert ex.stats()["fork_joins"] == 0  # no parallel section ran
    finally:
        ex.shutdown()


def test_nested_rank_map_runs_inline_on_the_worker_thread():
    ex = RankExecutor("threads", workers=4)
    try:

        def outer(r: int):
            worker = threading.get_ident()
            inner_threads: list[int] = []

            def inner(s: int) -> int:
                inner_threads.append(threading.get_ident())
                return r * 10 + s

            inner_results = ex.rank_map(inner, 2)
            assert inner_threads == [worker, worker]
            return inner_results

        assert ex.rank_map(outer, 3) == [[0, 1], [10, 11], [20, 21]]
        assert ex.stats()["fork_joins"] == 1  # only the outer section
    finally:
        ex.shutdown()


def test_lowest_rank_exception_wins_and_all_ranks_complete():
    ex = RankExecutor("threads", workers=4)
    try:
        completed: list[int] = []

        def flaky(r: int) -> int:
            if r in (1, 3):
                raise ValueError(f"rank {r} failed")
            completed.append(r)
            return r

        with pytest.raises(ValueError, match="rank 1 failed"):
            ex.rank_map(flaky, 4)
        assert sorted(completed) == [0, 2]  # healthy ranks ran to the end
    finally:
        ex.shutdown()


def test_trace_events_merge_in_rank_order_with_sequential_ids():
    ex = RankExecutor("threads", workers=4)
    trace = Trace()
    trace.record("phase", "before")  # id 0, outside any fork-join
    try:

        def emit(r: int) -> None:
            time.sleep(0.01 * (3 - r))  # scramble completion order
            trace.record("compute", f"work[{r}].a", rank=r)
            trace.record("compute", f"work[{r}].b", rank=r)

        ex.rank_map(emit, 3, trace=trace)
    finally:
        ex.shutdown()
    labels = [e.label for e in trace.events]
    assert labels == [
        "before",
        "work[0].a", "work[0].b",
        "work[1].a", "work[1].b",
        "work[2].a", "work[2].b",
    ]
    assert [e.event_id for e in trace.events] == list(range(7))
    # The log keeps extending with correct ids after the merge.
    after = trace.record("phase", "after")
    assert after.event_id == 7


def test_trace_buffers_survive_a_failing_rank():
    ex = RankExecutor("threads", workers=2)
    trace = Trace()
    try:

        def emit_then_fail(r: int) -> None:
            trace.record("compute", f"r{r}", rank=r)
            if r == 1:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ex.rank_map(emit_then_fail, 2, trace=trace)
    finally:
        ex.shutdown()
    assert [e.label for e in trace.events] == ["r0", "r1"]


def test_stats_counters_accumulate():
    ex = RankExecutor("threads", workers=2)
    try:
        ex.rank_map(lambda r: np.ones(4).sum(), 4)
        ex.rank_map(lambda r: None, 2)
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert stats["fork_joins"] == 2
    assert stats["tasks"] == 6
    assert stats["wall_seconds"] > 0
    assert 0.0 <= stats["busy_fraction"] <= 1.0


def test_fold_accumulates_in_rank_order_and_skips_empty():
    order: list[str] = []

    def acc(into: dict, contrib: dict) -> None:
        for key, val in contrib.items():
            order.append(key)
            into[key] = into.get(key, 0) + val

    out = fold({}, [{"a": 1}, None, {"a": 2, "b": 3}, {}], acc)
    assert out == {"a": 3, "b": 3}
    assert order == ["a", "a", "b"]


# ---------------------------------------------------------------------------
# Process backend: fork-join dispatch, descriptor stats, failure policy
# ---------------------------------------------------------------------------


@needs_fork
def test_process_results_in_rank_order_from_worker_processes():
    ex = RankExecutor("process", workers=4)
    parent = os.getpid()
    try:
        results = ex.rank_map(lambda r: (r * 10, os.getpid()), 4)
    finally:
        ex.shutdown()
    assert [v for v, _ in results] == [0, 10, 20, 30]
    pids = {pid for _, pid in results}
    assert parent not in pids  # every rank really ran in a child
    assert len(pids) == 4  # one worker per rank at workers=4


@needs_fork
def test_process_distributes_ranks_round_robin_over_workers():
    ex = RankExecutor("process", workers=2)
    try:
        pids = ex.rank_map(lambda r: os.getpid(), 6)
    finally:
        ex.shutdown()
    # rank r runs on worker r % n: ranks {0,2,4} share a pid, {1,3,5} the other.
    assert pids[0] == pids[2] == pids[4]
    assert pids[1] == pids[3] == pids[5]
    assert pids[0] != pids[1]


@needs_fork
def test_process_lowest_rank_exception_wins():
    ex = RankExecutor("process", workers=4)
    try:

        def flaky(r: int) -> int:
            if r in (1, 3):
                raise ValueError(f"rank {r} failed")
            return r

        with pytest.raises(ValueError, match="rank 1 failed"):
            ex.rank_map(flaky, 4)
    finally:
        ex.shutdown()


@needs_fork
def test_process_trace_events_merge_in_rank_order_with_sequential_ids():
    ex = RankExecutor("process", workers=4)
    trace = Trace()
    trace.record("phase", "before")  # id 0, recorded in the parent
    try:

        def emit(r: int) -> None:
            trace.record("compute", f"work[{r}].a", rank=r)
            trace.record("compute", f"work[{r}].b", rank=r)

        ex.rank_map(emit, 3, trace=trace)
    finally:
        ex.shutdown()
    labels = [e.label for e in trace.events]
    assert labels == [
        "before",
        "work[0].a", "work[0].b",
        "work[1].a", "work[1].b",
        "work[2].a", "work[2].b",
    ]
    assert [e.event_id for e in trace.events] == list(range(7))
    assert trace.record("phase", "after").event_id == 7


@needs_fork
def test_process_stats_count_forks_and_shipped_descriptors():
    ex = RankExecutor("process", workers=2)
    try:
        # Large C-contiguous results cross the pipe as staging-segment
        # descriptors rather than inline pickle bytes.
        ex.rank_map(lambda r: np.full(32_768, float(r)), 4)
        ex.rank_map(lambda r: None, 4)
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert stats["backend"] == "process"
    assert stats["fork_joins"] == 2
    assert stats["forks"] == 4  # 2 workers forked per section
    assert stats["ipc_descriptors"] >= 4  # one stage ref per big array


def test_threads_stats_report_zero_forks():
    ex = RankExecutor("threads", workers=2)
    try:
        ex.rank_map(lambda r: r, 4)
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert stats["forks"] == 0 and stats["ipc_descriptors"] == 0


@needs_fork
def test_process_shared_state_falls_back_to_threads():
    """``shared_state=True`` (serving's decode batcher mutates shared
    KV state in place) must keep the closures in this address space."""
    ex = RankExecutor("process", workers=4)
    parent = os.getpid()
    try:
        pids = ex.rank_map(lambda r: os.getpid(), 4, shared_state=True)
        assert pids == [parent] * 4
        assert ex.stats()["forks"] == 0
    finally:
        ex.shutdown()


@needs_fork
def test_process_force_serial_and_world_one_run_inline():
    ex = RankExecutor("process", workers=4)
    parent = os.getpid()
    try:
        assert ex.rank_map(lambda r: os.getpid(), 1) == [parent]
        assert ex.rank_map(lambda r: os.getpid(), 3, force_serial=True) == [parent] * 3
        assert ex.stats()["forks"] == 0
    finally:
        ex.shutdown()


@needs_fork
def test_process_nested_rank_map_runs_inline_in_the_child():
    ex = RankExecutor("process", workers=2)
    try:

        def outer(r: int):
            me = os.getpid()
            inner_pids = ex.rank_map(lambda s: os.getpid(), 2)
            assert inner_pids == [me, me]  # no fork-from-fork
            return r

        assert ex.rank_map(outer, 2) == [0, 1]
        assert ex.stats()["fork_joins"] == 1
    finally:
        ex.shutdown()


@needs_fork
def test_process_ships_structured_exceptions_intact():
    """Runtime errors with required constructor fields (OOM carries
    pool/requested/capacity/in_use) must survive the result pipe — the
    capacity experiments diagnose failures from those fields."""
    from repro.common.errors import OutOfMemoryError

    ex = RankExecutor("process", workers=2)
    try:

        def oom(r: int) -> int:
            if r == 0:
                raise OutOfMemoryError("cuda:0", 1024, 512, 400)
            return r

        with pytest.raises(OutOfMemoryError) as info:
            ex.rank_map(oom, 2)
    finally:
        ex.shutdown()
    err = info.value
    assert (err.pool, err.requested, err.capacity, err.in_use) == (
        "cuda:0", 1024, 512, 400,
    )


@needs_fork
def test_process_dead_worker_is_a_loud_error():
    ex = RankExecutor("process", workers=2)
    try:

        def die(r: int) -> int:
            if r == 1:
                os._exit(17)  # simulates a segfaulted/OOM-killed worker
            return r

        with pytest.raises(RuntimeError, match="died without a result"):
            ex.rank_map(die, 2)
    finally:
        ex.shutdown()


@needs_fork
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the speedup only shows with >=4 physical cores",
)
def test_process_backend_speeds_up_python_heavy_ranks():
    """The process backend's reason to exist: pure-Python rank compute
    holds the GIL, so threads serialize it while forked workers scale
    across cores.  Report-only bench receipts carry the numbers; this is
    the hard wall-clock assertion, gated on capable hardware."""

    def burn(r: int) -> int:
        total = 0
        for i in range(600_000):
            total += i * i
        return total

    serial = RankExecutor("serial", workers=1)
    start = time.perf_counter()
    expected = serial.rank_map(burn, 4)
    serial_t = time.perf_counter() - start

    ex = RankExecutor("process", workers=4)
    try:
        start = time.perf_counter()
        got = ex.rank_map(burn, 4)
        proc_t = time.perf_counter() - start
    finally:
        ex.shutdown()
    assert got == expected
    assert proc_t < serial_t * 0.75, (proc_t, serial_t)


# ---------------------------------------------------------------------------
# Process-pool backend: persistent workers, rendezvous, fallback policy
# ---------------------------------------------------------------------------


@needs_fork
def test_pool_workers_fork_once_and_serve_every_section():
    ex = RankExecutor("process-pool", workers=2)
    parent = os.getpid()
    try:
        first = ex.rank_map(lambda r: os.getpid(), 4)
        second = ex.rank_map(lambda r: os.getpid(), 4)
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert parent not in first  # ranks really ran out-of-process
    assert first[0] == first[2] and first[1] == first[3]  # round-robin
    assert first == second  # the same resident workers served both
    assert stats["forks"] == 2  # one fork per worker, per lifetime
    assert stats["pool_reuses"] == 1 and stats["fork_joins"] == 2


@needs_fork
def test_pool_results_and_exceptions_match_process_semantics():
    ex = RankExecutor("process-pool", workers=4)
    try:
        assert ex.rank_map(lambda r: r * 10, 4) == [0, 10, 20, 30]

        def flaky(r: int) -> int:
            if r in (1, 3):
                raise ValueError(f"rank {r} failed")
            return r

        with pytest.raises(ValueError, match="rank 1 failed"):
            ex.rank_map(flaky, 4)
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert stats["fallback_forks"] == 0  # both sections rode the pool


@needs_fork
def test_pool_trace_events_merge_in_rank_order_with_sequential_ids():
    ex = RankExecutor("process-pool", workers=4)
    trace = Trace()
    trace.record("phase", "before")  # id 0, recorded in the parent
    try:

        def emit(r: int) -> None:
            trace.record("compute", f"work[{r}].a", rank=r)
            trace.record("compute", f"work[{r}].b", rank=r)

        ex.rank_map(emit, 3, trace=trace)
    finally:
        ex.shutdown()
    labels = [e.label for e in trace.events]
    assert labels == [
        "before",
        "work[0].a", "work[0].b",
        "work[1].a", "work[1].b",
        "work[2].a", "work[2].b",
    ]
    assert [e.event_id for e in trace.events] == list(range(7))
    assert trace.record("phase", "after").event_id == 7


@needs_fork
def test_pool_worker_death_mid_task_is_loud_and_the_pool_recovers():
    ex = RankExecutor("process-pool", workers=2)
    try:
        before = ex.rank_map(lambda r: os.getpid(), 2)

        def die(r: int) -> int:
            if r == 1:
                os._exit(17)  # simulates a segfaulted/OOM-killed worker
            return r

        with pytest.raises(RuntimeError, match="died mid-task"):
            ex.rank_map(die, 2)
        after = ex.rank_map(lambda r: os.getpid(), 2)
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert set(before).isdisjoint(after)  # torn down, then re-forked fresh
    assert stats["forks"] == 4  # two workers, forked twice


@needs_fork
def test_pool_nested_rank_map_runs_inline_in_the_worker():
    ex = RankExecutor("process-pool", workers=2)
    set_executor(ex)
    try:

        def outer(r: int):
            me = os.getpid()
            inner_pids = rank_map(lambda s: os.getpid(), 2)
            assert inner_pids == [me, me]  # no fork-from-fork, no re-ship
            return r

        assert ex.rank_map(outer, 2) == [0, 1]
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert stats["fork_joins"] == 1  # only the outer section dispatched
    assert stats["fallback_forks"] == 0


@needs_fork
def test_pool_unshippable_closure_falls_back_to_per_section_fork():
    ex = RankExecutor("process-pool", workers=2)
    lock = threading.Lock()
    parent = os.getpid()
    try:

        def guarded(r: int) -> int:
            with lock:  # a live Lock can't cross the task codec
                return os.getpid()

        pids = ex.rank_map(guarded, 2)
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert parent not in pids  # the fallback still forked real children
    assert stats["fallback_forks"] == 1
    assert stats["fork_joins"] == 1


@needs_fork
def test_pool_shared_state_falls_back_to_threads():
    ex = RankExecutor("process-pool", workers=4)
    parent = os.getpid()
    try:
        pids = ex.rank_map(lambda r: os.getpid(), 4, shared_state=True)
        assert pids == [parent] * 4
        assert ex.stats()["forks"] == 0  # never even forked the pool
    finally:
        ex.shutdown()


@needs_fork
def test_pool_stats_count_task_occupancy_and_reuse():
    ex = RankExecutor("process-pool", workers=2)
    try:
        for _ in range(3):
            ex.rank_map(lambda r: float(np.ones(64).sum()), 4)
        stats = ex.stats()
    finally:
        ex.shutdown()
    assert stats["backend"] == "process-pool"
    assert stats["fork_joins"] == 3 and stats["tasks"] == 12
    assert stats["forks"] == 2 and stats["pool_reuses"] == 2
    assert stats["pool_restarts"] == 0
    assert stats["wall_seconds"] > 0
    assert 0.0 <= stats["busy_fraction"] <= 1.0


def test_blas_threads_per_worker_never_round_to_zero():
    from repro.runtime.executor import _blas_threads_for

    cores = os.cpu_count() or 1
    assert _blas_threads_for(1) == cores
    # More workers than cores must clamp to one BLAS thread each, never
    # zero (a zero clamp makes every matmul crawl through a 0-thread
    # pool fallback on some BLAS builds).
    assert _blas_threads_for(cores * 4) == 1
    assert _blas_threads_for(10_000) == 1


# ---------------------------------------------------------------------------
# Selection: env var, context manager, constructor validation
# ---------------------------------------------------------------------------


def test_env_selects_serial(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "serial")
    reset_executor()
    ex = get_executor()
    assert ex.backend == "serial" and not ex.parallel


@pytest.mark.parametrize("value,workers", [("threads:3", 3), ("2", 2)])
def test_env_selects_thread_count(monkeypatch, value, workers):
    monkeypatch.setenv("REPRO_EXECUTOR", value)
    reset_executor()
    ex = get_executor()
    assert ex.backend == "threads" and ex.workers == workers


@needs_fork
@pytest.mark.parametrize("value,workers", [("process:3", 3), ("process", None)])
def test_env_selects_process_backend(monkeypatch, value, workers):
    monkeypatch.setenv("REPRO_EXECUTOR", value)
    reset_executor()
    ex = get_executor()
    assert ex.backend == "process"
    if workers is not None:
        assert ex.workers == workers
    else:
        assert ex.workers >= 1  # defaults to the CPU count


@needs_fork
@pytest.mark.parametrize(
    "value,workers", [("process-pool:3", 3), ("process-pool", None)]
)
def test_env_selects_process_pool_backend(monkeypatch, value, workers):
    monkeypatch.setenv("REPRO_EXECUTOR", value)
    reset_executor()
    ex = get_executor()
    assert ex.backend == "process-pool"
    if workers is not None:
        assert ex.workers == workers
    else:
        assert ex.workers >= 1


def test_env_default_is_threads_at_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    reset_executor()
    ex = get_executor()
    assert ex.backend == "threads" and ex.workers >= 1


def test_env_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "fibers:9")
    reset_executor()
    with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
        get_executor()


def test_invalid_constructor_args_raise():
    with pytest.raises(ValueError):
        RankExecutor("processes")
    with pytest.raises(ValueError):
        RankExecutor("threads", workers=0)


def test_executor_context_overrides_and_restores():
    outer = RankExecutor("serial", workers=1)
    set_executor(outer)
    with executor(workers=4) as scoped:
        assert get_executor() is scoped
        assert scoped.parallel and scoped.workers == 4
    assert get_executor() is outer
    # workers=1 pins the serial path.
    with executor(workers=1) as scoped:
        assert scoped.backend == "serial"


def test_executor_context_with_no_prior_executor_reverts_to_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "serial")
    with executor(workers=4):
        assert get_executor().parallel
    # No stale scoped executor left behind: env is re-read.
    assert get_executor().backend == "serial"


def test_module_level_rank_map_and_stats(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "threads:2")
    reset_executor()
    assert rank_map(lambda r: r + 1, 3) == [1, 2, 3]
    stats = executor_stats()
    assert stats["workers"] == 2 and stats["fork_joins"] == 1


# ---------------------------------------------------------------------------
# Satellite: thread safety of the shared runtime pieces
# ---------------------------------------------------------------------------


def _hammer(n_threads: int, body) -> None:
    """Run ``body(thread_index)`` on ``n_threads`` threads, started
    together, re-raising the first exception."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def runner(i: int) -> None:
        barrier.wait()
        try:
            body(i)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def test_memory_pool_concurrent_alloc_free_is_exact():
    pool = MemoryPool("stress")
    per_thread, rounds = 1024, 200

    def body(i: int) -> None:
        for _ in range(rounds):
            a = pool.alloc(per_thread, tag=f"t{i}")
            b = pool.alloc(per_thread, tag=f"t{i}")
            pool.free(a)
            pool.free(b)

    _hammer(8, body)
    assert pool.in_use == 0
    assert pool.n_allocs == 8 * rounds * 2
    assert pool.total_allocated == 8 * rounds * 2 * per_thread
    assert pool.usage_by_tag() == {}
    pool.check_empty()


def test_arena_concurrent_rent_giveback_stays_consistent():
    pool = MemoryPool("stress")
    arena = pool.arena

    def body(i: int) -> None:
        shape = (64, (i % 4) + 1)
        for _ in range(200):
            buf = arena.rent(shape, np.float64)
            assert buf.shape == shape
            buf.fill(i)  # touch the memory
            arena.giveback(buf)

    _hammer(8, body)
    stats = arena.stats()
    assert stats["hits"] + stats["misses"] == 8 * 200
    # Every buffer was given back, none lost mid-flight.
    assert arena.free_buffers <= 8 * 200
    assert arena.free_buffers >= 1


def test_pool_arena_mix_under_rank_map():
    """The realistic pattern: rank closures alloc/free on a shared pool
    and rent/giveback arena storage concurrently."""
    pool = MemoryPool("host")
    ex = RankExecutor("threads", workers=4)
    try:

        def body(r: int) -> int:
            total = 0
            for _ in range(100):
                alloc = pool.alloc(512, tag=f"rank{r}")
                buf = pool.arena.rent((32,), np.float64)
                total += buf.size
                pool.arena.giveback(buf)
                pool.free(alloc)
            return total

        results = ex.rank_map(body, 4)
    finally:
        ex.shutdown()
    assert results == [3200] * 4
    assert pool.in_use == 0
    pool.check_empty()


# ---------------------------------------------------------------------------
# Satellite: BLAS oversubscription guard
# ---------------------------------------------------------------------------


def test_blas_clamp_respects_user_pinning(monkeypatch):
    monkeypatch.setenv("OMP_NUM_THREADS", "7")
    assert clamp_blas_threads(1) is False


def test_blas_clamp_is_safe_without_env(monkeypatch):
    for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
        monkeypatch.delenv(var, raising=False)
    # Build-dependent whether a setter exists; must not crash either way,
    # and BLAS results must stay correct afterwards.
    clamp_blas_threads(1)
    a = np.arange(12.0).reshape(3, 4)
    assert np.allclose(a @ a.T, a @ a.T)
