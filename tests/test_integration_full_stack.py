"""Full-stack integration: the paper's default production configuration
— FPDT + activation checkpointing with offload + ZeRO sharded Adam +
bucketed gradient reduction — running end to end on the numeric runtime,
equal to the single-device reference step for step."""

import numpy as np
import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.parallel import bucketed_grad_allreduce
from repro.parallel.zero import ZeroAdam
from repro.runtime import VirtualCluster
from repro.training import Adam, SyntheticCorpus, make_batch

from .helpers import rng

WORLD = 4


class TestActivationCheckpointedRunner:
    @pytest.mark.parametrize(
        "cfg_factory",
        [
            pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4, num_layers=2), id="gpt"),
            pytest.param(
                lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2),
                id="llama",
            ),
        ],
    )
    def test_ac_runner_matches_reference(self, cfg_factory):
        cfg = cfg_factory()
        g = rng(0)
        tokens = g.integers(0, cfg.vocab_size, size=(1, 32))
        labels = g.integers(0, cfg.vocab_size, size=(1, 32))
        ref = GPTModel(cfg, seed=0)
        ref_loss = ref.forward_loss(tokens, labels)
        ref.backward_loss()
        ref_grads = ref.all_grads()

        model = GPTModel(cfg, seed=0)
        runner = FPDTModelRunner(
            model, VirtualCluster(WORLD), num_chunks=2, activation_checkpoint=True,
        )
        loss, grads = runner.forward_backward(tokens, labels)
        assert loss == pytest.approx(ref_loss, rel=1e-10)
        for name in ref_grads:
            np.testing.assert_allclose(
                grads[name], ref_grads[name], rtol=1e-6, atol=1e-9, err_msg=name
            )

    def test_ac_equals_no_ac_bitwise(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=3)
        g = rng(1)
        tokens = g.integers(0, cfg.vocab_size, size=(1, 32))
        labels = g.integers(0, cfg.vocab_size, size=(1, 32))
        outs = {}
        for ac in (False, True):
            model = GPTModel(cfg, seed=2)
            runner = FPDTModelRunner(
                model, VirtualCluster(WORLD), num_chunks=2, activation_checkpoint=ac,
            )
            outs[ac] = runner.forward_backward(tokens, labels)
        assert outs[True][0] == outs[False][0]
        for name in outs[True][1]:
            np.testing.assert_array_equal(outs[True][1][name], outs[False][1][name])

    def test_ac_shifts_checkpoints_to_host(self):
        """With chunk offloading disabled, host usage isolates the AC
        checkpoints: zero without AC, one hidden state per layer with."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=4)
        g = rng(3)
        tokens = g.integers(0, cfg.vocab_size, size=(1, 32))
        labels = g.integers(0, cfg.vocab_size, size=(1, 32))
        host_peaks = {}
        for ac in (False, True):
            model = GPTModel(cfg, seed=2)
            cluster = VirtualCluster(WORLD)
            FPDTModelRunner(
                model, cluster, num_chunks=2, offload=False,
                activation_checkpoint=ac,
            ).forward_backward(tokens, labels)
            host_peaks[ac] = cluster.host.pool.peak
        assert host_peaks[False] == 0
        assert host_peaks[True] > 0

    def test_ac_reduces_host_peak_vs_keeping_all_layer_caches(self):
        """The realistic effect at depth: without AC every layer's KV
        chunk cache stays on host until its backward; with AC only the
        (much smaller) per-layer hidden checkpoints persist."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=4)
        g = rng(4)
        tokens = g.integers(0, cfg.vocab_size, size=(1, 32))
        labels = g.integers(0, cfg.vocab_size, size=(1, 32))
        host_peaks = {}
        for ac in (False, True):
            model = GPTModel(cfg, seed=2)
            cluster = VirtualCluster(WORLD)
            FPDTModelRunner(
                model, cluster, num_chunks=2, offload=True,
                activation_checkpoint=ac,
            ).forward_backward(tokens, labels)
            host_peaks[ac] = cluster.host.pool.peak
        assert host_peaks[True] < host_peaks[False]


class TestFullProductionStep:
    """FPDT(+AC+offload) forward/backward -> bucketed grad reduce ->
    ZeRO-3 sharded Adam, vs reference model + plain Adam."""

    def _reference_steps(self, cfg, batches, lr):
        model = GPTModel(cfg, seed=5)
        opt = Adam(model.all_params(), lr=lr)
        losses = []
        for tokens, labels in batches:
            loss = model.forward_loss(tokens, labels)
            model.backward_loss()
            new = opt.step(model.all_params(), model.all_grads())
            for name, val in new.items():
                model.set_param(name, val)
            model.zero_grads()
            losses.append(loss)
        return losses

    def test_two_production_steps_match_reference(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32)
        corpus = SyntheticCorpus(32, branching=2, seed=11)
        batches = [make_batch(corpus, 1, 32) for _ in range(2)]
        lr = 5e-3
        ref_losses = self._reference_steps(cfg, batches, lr)

        model = GPTModel(cfg, seed=5)
        cluster = VirtualCluster(WORLD)
        runner = FPDTModelRunner(
            model, cluster, num_chunks=2, offload=True,
            activation_checkpoint=True, loss_chunks=2,
        )
        zopt = ZeroAdam(cluster, model.all_params(), stage=3, lr=lr, grad_reduce="sum")
        losses = []
        for tokens, labels in batches:
            loss, grads = runner.forward_backward(tokens, labels)
            # Bucketed reduction of the (already rank-summed) gradients:
            # rank 0 carries the sum, the others contribute zeros — the
            # plumbing a real run performs, with the same result.
            per_rank = [grads] + [
                {k: np.zeros_like(v) for k, v in grads.items()}
                for _ in range(WORLD - 1)
            ]
            reduced = bucketed_grad_allreduce(cluster, per_rank, bucket_bytes=4096)
            new_params = zopt.step([reduced] + [
                {k: np.zeros_like(v) for k, v in reduced.items()}
                for _ in range(WORLD - 1)
            ])
            for name, val in new_params.items():
                model.set_param(name, val)
            losses.append(loss)
        np.testing.assert_allclose(losses, ref_losses, rtol=1e-9)

    def test_no_device_leaks_after_production_step(self):
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32)
        corpus = SyntheticCorpus(32, branching=2, seed=12)
        tokens, labels = make_batch(corpus, 1, 32)
        model = GPTModel(cfg, seed=5)
        cluster = VirtualCluster(WORLD)
        runner = FPDTModelRunner(
            model, cluster, num_chunks=2, activation_checkpoint=True, loss_chunks=2,
        )
        runner.forward_backward(tokens, labels)
        cluster.check_no_leaks()
