"""Checkpoint-restart resume equivalence.

The resume contract: 4 steps + checkpoint + fresh-process restore + 4
steps must be **indistinguishable** from 8 uninterrupted steps — same
losses (bitwise), same LR schedule values, same telemetry step
numbering, same token accounting.  Anything less means the bugs this PR
fixes (schedule restarting from zero, data stream replaying from the
start) are back.
"""

import numpy as np
import pytest

from repro.core.fpdt_model import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt
from repro.runtime import VirtualCluster
from repro.telemetry import MemorySink, RunLogger
from repro.training import (
    PackedDocumentCorpus,
    SyntheticCorpus,
    Trainer,
    make_packed_batch,
    warmup_cosine_lr,
)

CFG = dict(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
SCHEDULE = lambda step: warmup_cosine_lr(  # noqa: E731
    step, base_lr=5e-3, warmup_steps=3, total_steps=16
)


def _trainer(seed, *, fpdt=False, telemetry=None):
    cfg = tiny_gpt(**CFG)
    model = GPTModel(cfg, seed=seed)
    corpus = SyntheticCorpus(cfg.vocab_size, branching=2, seed=seed)
    runner = None
    if fpdt:
        runner = FPDTModelRunner(
            model, VirtualCluster(2), num_chunks=2, offload=True, loss_chunks=2
        )
    return Trainer(
        model, corpus, runner=runner, lr=5e-3, grad_clip=1.0,
        lr_schedule=SCHEDULE, telemetry=telemetry,
    )


class TestResumeEquivalence:
    @pytest.mark.parametrize("fpdt", [False, True], ids=["reference", "fpdt"])
    def test_split_run_matches_uninterrupted_bitwise(self, tmp_path, fpdt):
        ref_logger = RunLogger(sinks=[MemorySink()])
        ref = _trainer(seed=3, fpdt=fpdt, telemetry=ref_logger)
        ref.train(8, batch_size=2, seq_len=16)

        logger_a = RunLogger(sinks=[MemorySink()])
        first = _trainer(seed=3, fpdt=fpdt, telemetry=logger_a)
        first.train(
            4, batch_size=2, seq_len=16,
            checkpoint_every=4, checkpoint_path=tmp_path / "mid",
        )

        # Fresh everything, as a restarted process: different model
        # init seed (overwritten by the restore), fresh corpus (its RNG
        # position comes from the checkpoint), fresh optimizer.
        logger_b = RunLogger(sinks=[MemorySink()])
        second = _trainer(seed=3, fpdt=fpdt, telemetry=logger_b)
        second.model.__init__(second.model.config, seed=999)
        result = second.train(
            4, batch_size=2, seq_len=16, resume_from=tmp_path / "mid"
        )

        losses = first.result.losses + result.losses
        assert losses == ref.result.losses  # bitwise, not allclose

        # LR schedule continued (not restarted): the resumed trainer's
        # first step used the step-4 LR, and all step records agree.
        ref_steps = ref_logger.steps
        split_steps = logger_a.steps + logger_b.steps
        assert [r.step for r in split_steps] == [r.step for r in ref_steps]
        assert [r.step for r in logger_b.steps] == [4, 5, 6, 7]
        assert [r.lr for r in split_steps] == [r.lr for r in ref_steps]
        assert logger_b.steps[0].lr == SCHEDULE(4) != SCHEDULE(0)
        assert [r.tokens_total for r in split_steps] == \
            [r.tokens_total for r in ref_steps]
        assert [r.loss for r in split_steps] == [r.loss for r in ref_steps]
        assert second.global_step == ref.global_step == 8

    def test_restore_repositions_data_stream(self, tmp_path):
        """The resumed corpus continues the token stream where the
        checkpoint left it — a fresh corpus alone would replay batches
        from the beginning and diverge."""
        ref = _trainer(seed=5)
        ref.train(6, batch_size=2, seq_len=16)

        first = _trainer(seed=5)
        first.train(3, batch_size=2, seq_len=16)
        first.save(tmp_path / "c")

        stale = _trainer(seed=5)  # corpus at position 0
        stale.restore(tmp_path / "c")
        assert stale.start_step == 3
        resumed = stale.train(3, batch_size=2, seq_len=16).losses
        assert first.result.losses + resumed == ref.result.losses

    def test_restore_after_steps_rejected(self, tmp_path):
        t = _trainer(seed=0)
        t.train(1, batch_size=2, seq_len=8)
        t.save(tmp_path / "c")
        t2 = _trainer(seed=0)
        t2.train(1, batch_size=2, seq_len=8)
        with pytest.raises(ValueError, match="restore"):
            t2.restore(tmp_path / "c")

    def test_checkpoint_every_validation(self, tmp_path):
        t = _trainer(seed=0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            t.train(2, checkpoint_every=0, checkpoint_path=tmp_path / "c")
        with pytest.raises(ValueError, match="checkpoint_path"):
            t.train(2, checkpoint_every=1)

    def test_packed_corpus_state_roundtrips(self):
        a = PackedDocumentCorpus(32, seed=4)
        _ = make_packed_batch(a, 2, 24)
        state = a.get_state()
        tokens_next, labels_next = make_packed_batch(a, 2, 24)

        b = PackedDocumentCorpus(32, seed=4)
        b.set_state(state)
        tokens_b, labels_b = make_packed_batch(b, 2, 24)
        np.testing.assert_array_equal(tokens_b, tokens_next)
        np.testing.assert_array_equal(labels_b, labels_next)

    def test_corpus_state_kind_checked(self):
        sync = SyntheticCorpus(16, seed=0)
        packed = PackedDocumentCorpus(16, seed=0)
        with pytest.raises(ValueError, match="SyntheticCorpus"):
            sync.set_state(packed.get_state())
        with pytest.raises(ValueError, match="PackedDocumentCorpus"):
            packed.set_state(sync.get_state())
