"""Tests for the buffer arena and the zero-copy fast path.

Covers the free-list mechanics (rent/giveback reuse, shape/dtype
keying, view refusal, per-key caps), the thread-local fast-path flag,
the DeviceTensor ``free`` vs ``release`` ownership split, and the
invariant the whole design rests on: renting from the arena changes
*allocation traffic*, never the byte accounting.
"""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.runtime import (
    BufferArena,
    VirtualCluster,
    fast_path,
    fast_path_enabled,
    set_fast_path,
)
from repro.runtime.collectives import all_to_all


class TestBufferArena:
    def test_rent_miss_then_hit(self):
        arena = BufferArena("t")
        a = arena.rent((4, 3), np.float64)
        assert a.shape == (4, 3) and a.dtype == np.float64
        assert (arena.hits, arena.misses) == (0, 1)
        assert arena.giveback(a)
        b = arena.rent((4, 3), np.float64)
        assert b is a  # recycled storage, not a fresh allocation
        assert (arena.hits, arena.misses) == (1, 1)
        assert arena.reused_bytes == a.nbytes

    def test_shape_and_dtype_key_separately(self):
        arena = BufferArena("t")
        a = arena.rent((4, 3), np.float64)
        arena.giveback(a)
        assert arena.rent((3, 4), np.float64) is not a  # same size, new shape
        assert arena.rent((4, 3), np.float32) is not a  # same shape, new dtype
        assert arena.hits == 0 and arena.misses == 3

    def test_giveback_refuses_views(self):
        arena = BufferArena("t")
        base = np.zeros((4, 4))
        assert not arena.giveback(base[1:])       # slice: has a base
        assert not arena.giveback(base.T)         # non-contiguous
        assert arena.free_buffers == 0

    def test_max_per_key_discards_overflow(self):
        arena = BufferArena("t", max_per_key=2)
        bufs = [arena.rent((8,), np.float64) for _ in range(3)]
        accepted = [arena.giveback(b) for b in bufs]
        assert accepted == [True, True, False]
        assert arena.free_buffers == 2
        assert arena.discards == 1

    def test_clear_drops_free_list(self):
        arena = BufferArena("t")
        arena.giveback(arena.rent((8,), np.float64))
        assert arena.free_bytes == 64
        assert arena.clear() == 1
        assert arena.free_buffers == 0 and arena.free_bytes == 0

    def test_stats_shape(self):
        arena = BufferArena("t")
        arena.giveback(arena.rent((2,), np.float64))
        arena.rent((2,), np.float64)
        s = arena.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["returns"] == 1
        assert s["hit_rate"] == pytest.approx(0.5)


class TestFastPathFlag:
    def test_default_on(self):
        assert fast_path_enabled()

    def test_context_manager_restores(self):
        with fast_path(False):
            assert not fast_path_enabled()
            with fast_path(True):
                assert fast_path_enabled()
            assert not fast_path_enabled()
        assert fast_path_enabled()

    def test_set_returns_previous(self):
        prev = set_fast_path(False)
        try:
            assert prev is True
            assert set_fast_path(True) is False
        finally:
            set_fast_path(True)


class TestDeviceRent:
    def test_rent_reuses_released_storage(self):
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        t = dev.rent((4, 4), np.float64, DType.FP32, "w")
        storage = t.data
        t.release()
        t2 = dev.rent((4, 4), np.float64, DType.FP32, "w")
        assert t2.data is storage
        assert dev.hbm.arena.hits == 1
        t2.release()
        cluster.check_no_leaks()

    def test_free_claims_storage_out_of_the_arena(self):
        """``free()`` hands the array to the caller for keeps: the arena
        must never recycle it underneath them."""
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        t = dev.rent((4, 4), np.float64, DType.FP32, "w")
        kept = t.free()
        t2 = dev.rent((4, 4), np.float64, DType.FP32, "w")
        assert t2.data is not kept
        t2.release()
        cluster.check_no_leaks()

    def test_release_is_use_after_free_loud(self):
        cluster = VirtualCluster(1)
        t = cluster.devices[0].rent((2,), np.float64, DType.FP32, "w")
        t.release()
        assert t.data is None
        assert "released" in repr(t)

    def test_fast_path_off_skips_arena(self):
        cluster = VirtualCluster(1)
        dev = cluster.devices[0]
        with fast_path(False):
            t = dev.rent((4,), np.float64, DType.FP32, "w")
            t.release()
            t2 = dev.rent((4,), np.float64, DType.FP32, "w")
            t2.release()
        assert dev.hbm.arena.hits == 0 and dev.hbm.arena.misses == 0

    def test_pool_stats_expose_arena(self):
        cluster = VirtualCluster(2)
        stats = cluster.memory_stats()
        for s in stats["hbm"]:
            assert "arena" in s and "hit_rate" in s["arena"]


class TestAccountingInvariance:
    def _run(self, enabled):
        """Three all_to_all rounds; returns (peak, in_use) of rank 0."""
        rng = np.random.default_rng(7)
        arrays = [rng.normal(size=(2, 8, 4, 4)) for _ in range(4)]
        with fast_path(enabled):
            cluster = VirtualCluster(4)
            tensors = [
                dev.from_numpy(a.copy(), DType.FP32, "x")
                for dev, a in zip(cluster.devices, arrays)
            ]
            for _ in range(3):
                tensors = all_to_all(cluster, tensors, split_axis=2, concat_axis=1)
                tensors = all_to_all(cluster, tensors, split_axis=1, concat_axis=2)
            for t in tensors:
                t.free()
            cluster.check_no_leaks()
            return cluster.devices[0].hbm.peak, cluster.devices[0].hbm.in_use

    def test_peak_bytes_identical_fast_path_on_or_off(self):
        """The arena recycles allocations, not accounting: every rented
        buffer is charged to the pool exactly like a fresh one."""
        assert self._run(True) == self._run(False)

    def test_steady_state_collectives_hit_the_arena(self):
        rng = np.random.default_rng(7)
        arrays = [rng.normal(size=(2, 8, 4, 4)) for _ in range(2)]
        cluster = VirtualCluster(2)
        tensors = [
            dev.from_numpy(a.copy(), DType.FP32, "x")
            for dev, a in zip(cluster.devices, arrays)
        ]
        for _ in range(4):
            tensors = all_to_all(cluster, tensors, split_axis=2, concat_axis=1)
            tensors = all_to_all(cluster, tensors, split_axis=1, concat_axis=2)
        for t in tensors:
            t.free()
        # First round misses, later rounds recycle the released inputs.
        assert all(d.hbm.arena.hits > 0 for d in cluster.devices)
