"""Shared test utilities: numerical gradient checking and RNG setup."""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_grad(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f(x)
        flat[i] = orig - eps
        down = f(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray, rtol=1e-5, atol=1e-7):
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
