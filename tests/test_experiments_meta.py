"""Meta-tests over the experiment harness: every registered experiment
runs in fast mode, renders, and carries data for its benchmark."""

import pytest

from repro.experiments import render
from repro.experiments.registry import EXPERIMENT_NAMES, all_experiments, get_experiment
from repro.experiments.report import ExperimentResult


class TestRegistry:
    def test_all_names_resolve(self):
        registry = all_experiments()
        assert set(registry) == set(EXPERIMENT_NAMES)
        for fn in registry.values():
            assert callable(fn)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_experiment("figure99")

    def test_registry_matches_cli(self):
        from repro.cli import EXPERIMENTS

        assert set(EXPERIMENTS) == set(EXPERIMENT_NAMES)


# figure14 trains a model even in fast mode; it has its own tests.
FAST_RUNNABLE = [n for n in EXPERIMENT_NAMES if n != "figure14"]


@pytest.mark.parametrize("name", FAST_RUNNABLE)
def test_experiment_runs_fast_and_renders(name):
    result = get_experiment(name)(fast=True)
    assert isinstance(result, ExperimentResult)
    assert result.rows, name
    assert result.data, name
    text = render(result)
    assert result.experiment in text
    # Every row has the declared number of columns (render would skew).
    for row in result.rows:
        assert len(row) == len(result.columns)


class TestReportRendering:
    def test_row_width_validation(self):
        result = ExperimentResult("X", "t", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row("only-one")

    def test_notes_rendered(self):
        result = ExperimentResult("X", "t", columns=["a"])
        result.add_row("1")
        result.note("hello note")
        assert "hello note" in render(result)
