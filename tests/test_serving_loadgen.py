"""Load generator: deterministic synthesis, long-tail shape, and full
replays (clean and chaos) gating on zero drops and bitwise outputs."""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.serving import (
    EngineConfig,
    LoadGenConfig,
    SchedulerConfig,
    run_load,
    synthesize_requests,
)


def _model():
    return GPTModel(
        tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32),
        seed=0,
    )


class TestSynthesize:
    def test_deterministic(self):
        cfg = LoadGenConfig(num_requests=30, seed=5)
        a = synthesize_requests(cfg, vocab_size=32)
        b = synthesize_requests(cfg, vocab_size=32)
        assert len(a) == len(b) == 30
        for ra, rb in zip(a, b):
            assert ra.rid == rb.rid
            assert ra.tenant == rb.tenant
            assert ra.priority == rb.priority
            assert ra.arrival_tick == rb.arrival_tick
            assert ra.max_new_tokens == rb.max_new_tokens
            np.testing.assert_array_equal(ra.prompt, rb.prompt)

    def test_long_tail_prompt_lengths(self):
        """Lognormal lengths: the tail is much longer than the median
        but clipped at max_prompt."""
        cfg = LoadGenConfig(
            num_requests=300, seed=1, prompt_log_mean=2.0,
            prompt_log_sigma=1.0, max_prompt=500,
        )
        lengths = [r.prompt_len for r in synthesize_requests(cfg, 32)]
        assert max(lengths) <= 500 and min(lengths) >= 1
        assert max(lengths) > 4 * float(np.median(lengths))

    def test_arrivals_are_nondecreasing(self):
        cfg = LoadGenConfig(num_requests=50, seed=2)
        ticks = [r.arrival_tick for r in synthesize_requests(cfg, 32)]
        assert ticks == sorted(ticks)

    def test_position_budget_caps_prompt(self):
        cfg = LoadGenConfig(num_requests=50, seed=3, max_prompt=1000,
                            max_new_tokens=8)
        requests = synthesize_requests(cfg, 32, position_budget=64)
        assert all(r.prompt_len + 8 <= 64 for r in requests)
        with pytest.raises(ValueError, match="no room"):
            synthesize_requests(cfg, 32, position_budget=8)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(num_requests=0)
        with pytest.raises(ValueError):
            LoadGenConfig(arrival_rate=0)


class TestRunLoad:
    def test_clean_replay_zero_drop_zero_mismatch(self):
        model = _model()
        cfg = LoadGenConfig(num_requests=25, seed=4, max_prompt=32,
                            max_new_tokens=6)
        requests = synthesize_requests(
            cfg, 32, position_budget=model.config.max_position_embeddings
        )
        report = run_load(
            model, requests,
            engine_config=EngineConfig(prefill_chunk=8),
            scheduler_config=SchedulerConfig(max_live=4, tenant_quota=2),
            verify="all",
        )
        assert report.ok
        assert report.completed == 25 and report.dropped == 0
        assert report.verified == 25 and report.mismatched == 0
        assert report.goodput > 0
        assert report.h2d_bytes > 0 and report.d2h_bytes > 0
        assert report.latency_p99 >= report.latency_p50 > 0

    def test_chaos_replay_still_bitwise(self):
        """Injected transfer faults produce retries but zero output
        divergence — the serve-smoke chaos gate."""
        model = _model()
        cfg = LoadGenConfig(num_requests=15, seed=5, max_prompt=32,
                            max_new_tokens=5)
        requests = synthesize_requests(
            cfg, 32, position_budget=model.config.max_position_embeddings
        )
        report = run_load(
            model, requests,
            engine_config=EngineConfig(prefill_chunk=8),
            fault_plan=FaultPlan(seed=6, offload_rate=0.1),
            verify="all",
        )
        assert report.fault_stats["total_faults"] > 0
        assert report.fault_stats["retries"] > 0
        assert report.ok

    def test_replay_is_deterministic(self):
        model = _model()
        cfg = LoadGenConfig(num_requests=20, seed=6, max_prompt=32,
                            max_new_tokens=5)
        requests = synthesize_requests(
            cfg, 32, position_budget=model.config.max_position_embeddings
        )
        a = run_load(model, requests, verify="none")
        b = run_load(model, requests, verify="none")
        assert a.schedule_digest == b.schedule_digest
        assert a.ticks == b.ticks
        assert (a.h2d_bytes, a.d2h_bytes) == (b.h2d_bytes, b.d2h_bytes)

    def test_windowed_llama_replay(self):
        cfg = tiny_llama(
            hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=1,
            vocab_size=32,
        ).scaled(attention_window=6)
        model = GPTModel(cfg, seed=1)
        load = LoadGenConfig(num_requests=12, seed=7, max_prompt=24,
                             max_new_tokens=6, temperature=0.9)
        report = run_load(
            model, synthesize_requests(load, 32),
            engine_config=EngineConfig(prefill_chunk=4),
            verify="all",
        )
        assert report.ok

    def test_verify_sampling_and_validation(self):
        model = _model()
        cfg = LoadGenConfig(num_requests=10, seed=8, max_prompt=16,
                            max_new_tokens=3)
        requests = synthesize_requests(
            cfg, 32, position_budget=model.config.max_position_embeddings
        )
        report = run_load(model, requests, verify=4)
        assert report.verified == 4 and report.mismatched == 0
        assert run_load(model, requests, verify="none").verified == 0
        with pytest.raises(ValueError, match="verify"):
            run_load(model, requests, verify="bogus")


class TestPercentiles:
    """Report percentiles must never be NaN, and at small sample counts
    they are the exact nearest-rank order statistics."""

    def test_percentile_guard_on_empty_and_foreign_stats(self):
        from repro.serving.loadgen import _percentile

        assert _percentile({}, "p99") == 0.0
        assert _percentile({"p99": None}, "p99") == 0.0
        assert _percentile({"p99": float("nan")}, "p99") == 0.0
        assert _percentile({"p99": 7.0}, "p99") == 7.0

    def test_empty_histogram_summary_is_zero_not_nan(self):
        from repro.telemetry.metrics import Histogram

        h = Histogram("empty")
        s = h.sample()
        assert s["count"] == 0
        assert s["p50"] == 0.0 and s["p99"] == 0.0
        assert h.quantiles() == {"p50": 0.0, "p99": 0.0}

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10])
    def test_exact_nearest_rank_at_small_counts(self, n):
        from math import ceil

        from repro.telemetry.metrics import Histogram

        values = [float(10 * (i + 1)) for i in range(n)]
        h = Histogram("lat")
        for v in values:
            h.observe(v)
        for q in (0.5, 0.9, 0.99):
            rank = min(n - 1, max(0, ceil(q * n) - 1))
            assert h.quantile(q) == values[rank], (n, q)
        # p99 of fewer than 100 samples is the max — never interpolated.
        assert h.quantile(0.99) == max(values)

    def test_single_request_replay_has_finite_percentiles(self):
        model = _model()
        cfg = LoadGenConfig(num_requests=1, seed=9, max_prompt=8,
                            max_new_tokens=2)
        requests = synthesize_requests(
            cfg, 32, position_budget=model.config.max_position_embeddings
        )
        report = run_load(model, requests, verify="all")
        assert report.ok and report.completed == 1
        assert report.latency_p50 == report.latency_p99 > 0
        assert report.ttft_p50 == report.ttft_p99 >= 0
        assert "nan" not in report.render().lower()

    def test_all_rejected_replay_reports_zero_percentiles(self):
        """Admission control rejecting everything leaves empty latency
        histograms: the report must read 0.0, not NaN."""
        from repro.serving import SchedulerConfig

        model = _model()
        cfg = LoadGenConfig(num_requests=6, seed=10, max_prompt=8,
                            max_new_tokens=2, arrival_rate=100.0)
        requests = synthesize_requests(
            cfg, 32, position_budget=model.config.max_position_embeddings
        )
        report = run_load(
            model, requests,
            scheduler_config=SchedulerConfig(max_live=1, max_queue=0),
            verify="none",
        )
        assert report.dropped > 0
        assert report.latency_p99 == 0.0 and report.ttft_p99 == 0.0
        assert "nan" not in report.render().lower()
