"""CLI tests (argument wiring and output sanity)."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "llama-8b"
        assert args.gpus == 4

    def test_experiment_choices(self):
        for name in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name

    def test_experiment_unknown_name_lists_registry(self, capsys):
        """Unknown names are validated against the experiments registry
        (not argparse choices): one-line error + the list, exit 1."""
        assert main(["experiment", "figure99"]) == 1
        err = capsys.readouterr().err
        assert "figure99" in err
        assert "table1" in err and "figure14" in err

    def test_metrics_parser(self):
        args = build_parser().parse_args(["metrics", "summary", "a.jsonl"])
        assert args.path == "a.jsonl"
        args = build_parser().parse_args(
            ["metrics", "diff", "a.jsonl", "b.jsonl",
             "--tol", "final_loss=0.5", "--default-tol", "0.1"]
        )
        assert (args.baseline, args.candidate) == ("a.jsonl", "b.jsonl")
        assert args.tol == ["final_loss=0.5"]
        assert args.default_tol == 0.1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics"])  # sub-subcommand required

    def test_train_run_log_flag(self):
        args = build_parser().parse_args(["train", "--run-log", "x.jsonl"])
        assert args.run_log == "x.jsonl"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.gpus == 2
        assert args.chunks == 4
        assert args.prefetch_depth == 2
        assert not args.no_offload
        assert args.out == "results/profile_trace.json"

    def test_profile_flags(self):
        args = build_parser().parse_args(
            ["profile", "--gpus", "4", "--prefetch-depth", "1", "--no-offload"]
        )
        assert (args.gpus, args.prefetch_depth, args.no_offload) == (4, 1, True)

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.steps is None and not args.quick
        assert args.seed == 7
        assert args.checkpoint_every == 2
        assert args.crash_at is None

    def test_chaos_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--quick", "--steps", "4", "--crash-at", "2",
             "--collective-rate", "0.2", "--run-log", "chaos.jsonl"]
        )
        assert (args.quick, args.steps, args.crash_at) == (True, 4, 2)
        assert args.collective_rate == 0.2
        assert args.run_log == "chaos.jsonl"
        assert args.flight_recorder is None

    def test_serve_obs_flags(self):
        args = build_parser().parse_args(
            ["serve", "bench", "--requests", "50", "--verify", "none",
             "--slo", "ttft_p99<=40", "--slo", "latency_p99<=80",
             "--spans", "spans.json", "--report-json", "report.json",
             "--flight-recorder", "flight.json"]
        )
        assert args.slo == ["ttft_p99<=40", "latency_p99<=80"]
        assert args.spans == "spans.json"
        assert args.report_json == "report.json"
        assert args.flight_recorder == "flight.json"

    def test_obs_parsers(self):
        args = build_parser().parse_args(["obs", "spans", "s.json",
                                          "--trace", "req-000001",
                                          "--limit", "3"])
        assert (args.path, args.trace, args.limit) == ("s.json",
                                                       "req-000001", 3)
        args = build_parser().parse_args(
            ["obs", "slo", "r.json", "--objective", "ttft_p99<=40"]
        )
        assert args.objective == ["ttft_p99<=40"]
        args = build_parser().parse_args(["obs", "postmortem", "d.json"])
        assert args.path == "d.json"
        args = build_parser().parse_args(
            ["obs", "export", "s.json", "--out", "t.json"]
        )
        assert (args.path, args.out) == ("s.json", "t.json")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])  # sub-subcommand required
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "slo", "r.json"])  # needs --objective


class TestCommands:
    def test_plan_output(self, capsys):
        assert main(["plan", "--model", "gpt-2.7b", "--gpus", "4", "--gpu-kind", "40G"]) == 0
        out = capsys.readouterr().out
        assert "FPDT w. double buffer" in out
        assert "Megatron-SP" in out

    def test_tune_output(self, capsys):
        assert main(["tune", "--model", "llama-8b", "--gpus", "4", "--seq", "256K"]) == 0
        out = capsys.readouterr().out
        assert "<-- chosen" in out

    def test_tune_infeasible(self, capsys):
        rc = main(["tune", "--model", "llama-70b", "--gpus", "4",
                   "--gpu-kind", "40G", "--seq", "1M"])
        assert rc == 1

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "table2", "--fast"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_train(self, capsys):
        assert main(["train", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "fpdt-offload" in out

    def test_plan_with_window(self, capsys):
        assert main([
            "plan", "--model", "llama-8b", "--gpus", "8", "--window", "64K",
        ]) == 0
        out = capsys.readouterr().out
        assert "window 64K" in out
        assert "GPU-h/B tokens" in out

    def test_chaos_quick_recovers_bitwise(self, capsys, tmp_path):
        log = tmp_path / "chaos.jsonl"
        assert main(["chaos", "--quick", "--run-log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "bitwise identical" in out
        assert log.exists()

    def test_chaos_bad_crash_step(self, capsys):
        assert main(["chaos", "--quick", "--crash-at", "99"]) == 2
        assert "--crash-at" in capsys.readouterr().err

    def test_serve_bench_obs_pipeline(self, capsys, tmp_path):
        """serve bench with spans + SLOs + report, then every obs
        subcommand over the artifacts."""
        import json

        spans = tmp_path / "spans.json"
        report = tmp_path / "report.json"
        assert main([
            "serve", "bench", "--requests", "12", "--verify", "none",
            "--max-prompt", "24", "--max-new-tokens", "4",
            "--slo", "ttft_p99<=500", "--slo", "latency_p99<=500",
            "--spans", str(spans), "--report-json", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "0 orphans" in out
        assert "slo" in out and "VIOLATED" not in out

        assert main(["obs", "spans", str(spans), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "request" in out and "0 orphans" in out

        assert main(["obs", "slo", str(report),
                     "--objective", "ttft_p99<=500"]) == 0
        assert "[ok]" in capsys.readouterr().out
        assert main(["obs", "slo", str(report),
                     "--objective", "latency_p99<=0.001"]) == 1
        assert "VIOLATED" in capsys.readouterr().out

        trace = tmp_path / "trace.json"
        assert main(["obs", "export", str(spans), "--out", str(trace)]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]

    def test_serve_bench_slo_violation_exits_nonzero(self, capsys):
        rc = main([
            "serve", "bench", "--requests", "12", "--verify", "none",
            "--max-prompt", "24", "--max-new-tokens", "4",
            "--slo", "latency_p99<=0.001",
        ])
        assert rc == 1
        captured = capsys.readouterr()
        assert "VIOLATED" in captured.out
        assert "SLO" in captured.err

    def test_serve_bench_bad_slo_spec(self, capsys):
        rc = main([
            "serve", "bench", "--requests", "5", "--verify", "none",
            "--slo", "not-a-spec",
        ])
        assert rc == 2
        assert "SLO spec" in capsys.readouterr().err

    def test_chaos_flight_recorder_postmortem(self, capsys, tmp_path):
        dump = tmp_path / "flight.json"
        assert main(["chaos", "--quick",
                     "--flight-recorder", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "bitwise identical" in out
        assert str(dump) in out
        assert main(["obs", "postmortem", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "InjectedCrash" in out and "train_step" in out

    def test_obs_postmortem_unparseable_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        assert main(["obs", "postmortem", str(bad)]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_profile_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main([
            "profile", "--gpus", "2", "--chunks", "3", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out and "MFU" in out
        assert "forward" in out and "backward" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["world"] == 2
