"""CLI tests (argument wiring and output sanity)."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "llama-8b"
        assert args.gpus == 4

    def test_experiment_choices(self):
        for name in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name

    def test_experiment_unknown_name_lists_registry(self, capsys):
        """Unknown names are validated against the experiments registry
        (not argparse choices): one-line error + the list, exit 1."""
        assert main(["experiment", "figure99"]) == 1
        err = capsys.readouterr().err
        assert "figure99" in err
        assert "table1" in err and "figure14" in err

    def test_metrics_parser(self):
        args = build_parser().parse_args(["metrics", "summary", "a.jsonl"])
        assert args.path == "a.jsonl"
        args = build_parser().parse_args(
            ["metrics", "diff", "a.jsonl", "b.jsonl",
             "--tol", "final_loss=0.5", "--default-tol", "0.1"]
        )
        assert (args.baseline, args.candidate) == ("a.jsonl", "b.jsonl")
        assert args.tol == ["final_loss=0.5"]
        assert args.default_tol == 0.1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics"])  # sub-subcommand required

    def test_train_run_log_flag(self):
        args = build_parser().parse_args(["train", "--run-log", "x.jsonl"])
        assert args.run_log == "x.jsonl"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.gpus == 2
        assert args.chunks == 4
        assert args.prefetch_depth == 2
        assert not args.no_offload
        assert args.out == "results/profile_trace.json"

    def test_profile_flags(self):
        args = build_parser().parse_args(
            ["profile", "--gpus", "4", "--prefetch-depth", "1", "--no-offload"]
        )
        assert (args.gpus, args.prefetch_depth, args.no_offload) == (4, 1, True)

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.steps is None and not args.quick
        assert args.seed == 7
        assert args.checkpoint_every == 2
        assert args.crash_at is None

    def test_chaos_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--quick", "--steps", "4", "--crash-at", "2",
             "--collective-rate", "0.2", "--run-log", "chaos.jsonl"]
        )
        assert (args.quick, args.steps, args.crash_at) == (True, 4, 2)
        assert args.collective_rate == 0.2
        assert args.run_log == "chaos.jsonl"


class TestCommands:
    def test_plan_output(self, capsys):
        assert main(["plan", "--model", "gpt-2.7b", "--gpus", "4", "--gpu-kind", "40G"]) == 0
        out = capsys.readouterr().out
        assert "FPDT w. double buffer" in out
        assert "Megatron-SP" in out

    def test_tune_output(self, capsys):
        assert main(["tune", "--model", "llama-8b", "--gpus", "4", "--seq", "256K"]) == 0
        out = capsys.readouterr().out
        assert "<-- chosen" in out

    def test_tune_infeasible(self, capsys):
        rc = main(["tune", "--model", "llama-70b", "--gpus", "4",
                   "--gpu-kind", "40G", "--seq", "1M"])
        assert rc == 1

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "table2", "--fast"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_train(self, capsys):
        assert main(["train", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "fpdt-offload" in out

    def test_plan_with_window(self, capsys):
        assert main([
            "plan", "--model", "llama-8b", "--gpus", "8", "--window", "64K",
        ]) == 0
        out = capsys.readouterr().out
        assert "window 64K" in out
        assert "GPU-h/B tokens" in out

    def test_chaos_quick_recovers_bitwise(self, capsys, tmp_path):
        log = tmp_path / "chaos.jsonl"
        assert main(["chaos", "--quick", "--run-log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "bitwise identical" in out
        assert log.exists()

    def test_chaos_bad_crash_step(self, capsys):
        assert main(["chaos", "--quick", "--crash-at", "99"]) == 2
        assert "--crash-at" in capsys.readouterr().err

    def test_profile_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main([
            "profile", "--gpus", "2", "--chunks", "3", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out and "MFU" in out
        assert "forward" in out and "backward" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["world"] == 2
