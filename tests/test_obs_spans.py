"""Causal span tracing: deterministic ids, event attribution, serving
span trees (zero orphans, exact TTFT decomposition), and the Perfetto
export."""

import json

import pytest

from repro.models import GPTModel, tiny_gpt
from repro.obs import (
    SpanTracer,
    all_spans,
    build_trees,
    load_dump,
    orphan_spans,
    render_spans,
    span_from_dict,
    ttft_breakdown,
)
from repro.profiler import spans_to_chrome_trace
from repro.serving import (
    EngineConfig,
    LoadGenConfig,
    SchedulerConfig,
    run_load,
    synthesize_requests,
)


def _model():
    return GPTModel(
        tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32),
        seed=0,
    )


def _traced_replay(n=20, seed=4, **load_kwargs):
    model = _model()
    cfg = LoadGenConfig(num_requests=n, seed=seed, max_prompt=32,
                        max_new_tokens=6, **load_kwargs)
    requests = synthesize_requests(
        cfg, 32, position_budget=model.config.max_position_embeddings
    )
    tracer = SpanTracer()
    report = run_load(
        model, requests,
        engine_config=EngineConfig(prefill_chunk=8),
        scheduler_config=SchedulerConfig(max_live=4, tenant_quota=2),
        verify="none",
        tracer=tracer,
    )
    return report, tracer


class TestSpanTracer:
    def test_hierarchical_deterministic_ids(self):
        t = SpanTracer()
        with t.span("root", trace_id="r") as root:
            with t.span("a", parent=root) as a:
                with t.span("a0", parent=a):
                    pass
            with t.span("b", parent=root) as b:
                pass
        ids = {s.name: (s.span_id, s.parent_id) for s in t.spans}
        assert ids == {
            "a0": ("0.0.0", "0.0"),
            "a": ("0.0", "0"),
            "b": ("0.1", "0"),
            "root": ("0", None),
        }
        # seq reflects completion order: innermost first.
        assert [s.name for s in t.spans] == ["a0", "a", "b", "root"]
        # A second root in the same trace gets the next root id.
        with t.span("root2", trace_id="r"):
            pass
        assert t.spans[-1].span_id == "1"

    def test_span_needs_parent_or_trace_id(self):
        with pytest.raises(ValueError, match="parent or a trace_id"):
            SpanTracer().start_span("nameless")

    def test_logical_clock_stamps(self):
        t = SpanTracer()
        t.tick = 3
        sp = t.start_span("s", trace_id="x")
        t.tick = 7
        t.end_span(sp)
        assert (sp.start, sp.end, sp.duration) == (3.0, 7.0, 4.0)

    def test_error_fires_listeners_while_span_open(self):
        t = SpanTracer()
        seen = []
        t.error_listeners.append(
            lambda span, exc: seen.append((span.name, span.end, str(exc)))
        )
        with pytest.raises(RuntimeError):
            with t.span("doomed", trace_id="x"):
                raise RuntimeError("boom")
        # Listener ran before the span closed; the span records the error.
        assert seen == [("doomed", None, "boom")]
        assert t.spans[0].error == "RuntimeError: boom"

    def test_event_attribution_to_innermost_span(self):
        class Ev:
            def __init__(self, kind, nbytes, event_id):
                self.kind, self.nbytes, self.event_id = kind, nbytes, event_id

        t = SpanTracer()
        with t.span("outer", trace_id="x") as outer:
            t.observe_event(Ev("h2d", 100, 0))
            with t.span("inner", parent=outer) as inner:
                t.observe_event(Ev("h2d", 40, 1))
                t.observe_event(Ev("collective", 8, 2))
        assert inner.event_counts == {"h2d": 1, "collective": 1}
        assert inner.event_bytes == {"h2d": 40, "collective": 8}
        assert (inner.first_event, inner.last_event) == (1, 2)
        assert outer.event_counts == {"h2d": 1}

    def test_ambient_fallback_attribution(self):
        class Ev:
            kind, nbytes, event_id = "d2h", 16, 5

        t = SpanTracer()
        amb = t.start_span("step", trace_id="s", ambient=True)
        assert t.current() is amb
        t.observe_event(Ev())
        t.end_span(amb)
        assert amb.event_counts == {"d2h": 1}
        assert t.current() is None

    def test_buffered_merge_assigns_seq_in_rank_order(self):
        t = SpanTracer()
        buffers = []
        for rank in range(3):
            with t.buffered() as buf:
                sp = t.start_span(f"rank{rank}", trace_id="x")
                t.end_span(sp)
                assert sp.seq == -1  # parked, no seq yet
            buffers.append(buf)
        # Merge in reverse rank order: seq follows merge order exactly.
        t.merge(reversed(buffers))
        assert [s.name for s in t.spans] == ["rank2", "rank1", "rank0"]
        assert [s.seq for s in t.spans] == [0, 1, 2]
        assert t.emitted == 3

    def test_dump_round_trip(self, tmp_path):
        t = SpanTracer()
        with t.span("root", trace_id="r", attrs={"k": 1}) as root:
            with t.span("child", parent=root):
                pass
        path = t.dump_spans(tmp_path / "spans.json")
        doc = load_dump(path)
        assert doc["record"] == "spans"
        rebuilt = [span_from_dict(d) for d in doc["spans"]]
        assert [s.to_dict() for s in rebuilt] == t.to_dicts()
        assert not (tmp_path / "spans.json.tmp").exists()  # atomic write

    def test_load_dump_rejects_foreign_and_torn_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"spans": [')
        with pytest.raises(ValueError, match="unreadable"):
            load_dump(bad)
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"other": 1}')
        with pytest.raises(ValueError, match="not a spans"):
            load_dump(foreign)


class TestServingSpans:
    def test_every_request_has_a_complete_tree(self):
        report, tracer = _traced_replay(n=25)
        assert report.completed == 25
        spans = [s.to_dict() for s in tracer.spans]
        assert orphan_spans(spans) == []
        assert report.orphan_spans == 0
        assert report.spans_emitted == tracer.emitted == len(tracer.spans)
        forests = build_trees(spans)
        # One trace per request plus the scheduler tick stream.
        assert len(forests) == 26
        for rid in (r["trace_id"] for r in spans if r["kind"] == "request"):
            roots = forests[rid]
            assert len(roots) == 1
            phases = [c["name"] for c in roots[0]["children"]]
            assert phases == ["queued", "prefill", "decode"]

    def test_ttft_decomposes_exactly(self):
        report, tracer = _traced_replay(n=25)
        spans = [s.to_dict() for s in tracer.spans]
        roots = [
            r for forest in build_trees(spans).values() for r in forest
            if r["kind"] == "request" and not r["attrs"].get("rejected")
        ]
        assert len(roots) == 25
        for root in roots:
            bd = ttft_breakdown(root)
            assert bd is not None
            assert (
                bd["queue_ticks"] + bd["prefill_ticks"]
                + bd["first_decode_ticks"] == bd["ttft"]
            )
            a = root["attrs"]
            assert bd["ttft"] == a["first_token_tick"] - a["arrival_tick"]

    def test_rejected_request_still_gets_a_tree(self):
        # Force rejections with a tiny queue.
        model = _model()
        cfg = LoadGenConfig(num_requests=30, seed=9, max_prompt=32,
                            max_new_tokens=4, arrival_rate=10.0)
        requests = synthesize_requests(
            cfg, 32, position_budget=model.config.max_position_embeddings
        )
        tracer = SpanTracer()
        report = run_load(
            model, requests,
            scheduler_config=SchedulerConfig(max_live=1, max_queue=1),
            verify="none", tracer=tracer,
        )
        assert report.dropped > 0
        rejected = [
            s for s in tracer.spans
            if s.kind == "request" and s.attrs.get("rejected")
        ]
        assert len(rejected) == report.dropped
        assert all(s.end is not None for s in rejected)
        assert orphan_spans([s.to_dict() for s in tracer.spans]) == []

    def test_tracing_is_invisible_to_the_replay(self):
        base, _ = _traced_replay(n=15, seed=6)
        model = _model()
        cfg = LoadGenConfig(num_requests=15, seed=6, max_prompt=32,
                            max_new_tokens=6)
        requests = synthesize_requests(
            cfg, 32, position_budget=model.config.max_position_embeddings
        )
        plain = run_load(
            model, requests,
            engine_config=EngineConfig(prefill_chunk=8),
            scheduler_config=SchedulerConfig(max_live=4, tenant_quota=2),
            verify="none",
        )
        assert plain.schedule_digest == base.schedule_digest
        assert (plain.ticks, plain.h2d_bytes, plain.d2h_bytes) == (
            base.ticks, base.h2d_bytes, base.d2h_bytes
        )

    def test_render_spans_counts(self):
        _, tracer = _traced_replay(n=8, seed=3)
        doc = {"record": "spans", "spans": tracer.to_dicts()}
        text = render_spans(doc, limit=2)
        assert "0 orphans" in text
        assert "more traces" in text
        one = render_spans(doc, trace_id="req-000000")
        assert "req-000000" in one and "queued" in one


class TestChromeExport:
    def test_span_export_structure(self):
        _, tracer = _traced_replay(n=6, seed=2)
        doc = spans_to_chrome_trace(tracer.to_dicts())
        assert doc["otherData"]["traces"] == len(
            {s["trace_id"] for s in tracer.to_dicts()}
        )
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(tracer.spans)
        # Depth lanes: root request spans sit on tid 1, phases on 2.
        by_name = {}
        for e in xs:
            by_name.setdefault(e["name"], e)
        assert by_name["request"]["tid"] == 1
        assert by_name["queued"]["tid"] == 2
        # Zero-duration spans keep a visible sliver.
        assert all(e["dur"] > 0 for e in xs)
        json.dumps(doc)  # JSON-safe

    def test_open_spans_flagged_and_stretched(self):
        t = SpanTracer()
        t.tick = 2
        t.start_span("stuck", trace_id="x")
        sp = t.start_span("done", trace_id="x")
        t.tick = 5
        t.end_span(sp)
        spans = [s.to_dict() for s in t.spans] + [
            s.to_dict() for s in t.open_spans()
        ]
        doc = spans_to_chrome_trace(spans)
        open_ev = next(
            e for e in doc["traceEvents"] if e.get("args", {}).get("open")
        )
        assert open_ev["name"] == "stuck"
        # Stretched to the horizon (max end + 1 tick).
        assert open_ev["dur"] == pytest.approx((6.0 - 2.0) * 1000.0)
