"""Memory-model tests: Table 2 multipliers, component behavior, and the
strategy orderings the paper's tables establish."""

import pytest

from repro.common.units import GIB, parse_tokens
from repro.hardware import paper_node_a100_40g, paper_node_a100_80g
from repro.models import GPT_2_7B, LLAMA_8B
from repro.perfmodel import (
    FPDT_CHUNKED,
    FPDT_FULL,
    MEGATRON_SP,
    ULYSSES,
    estimate_memory,
    table2_footprint,
)
from repro.perfmodel.strategies import TrainingStrategy

NODE80 = paper_node_a100_80g()
S = parse_tokens("512K")


class TestTable2:
    def test_multipliers_match_paper(self):
        fp = table2_footprint(1, 1)
        # Table 2 row values in units of N*d (bf16 => 2 bytes per element)
        assert fp["hidden"] == (2, 4)
        assert fp["qkv_proj"] == (6, 12)
        assert fp["all2all"] == (8, 8)
        assert fp["attention"] == (8, 16)
        assert fp["ffn"] == (8, 16)

    def test_scales_with_tokens_and_width(self):
        fp = table2_footprint(1024, 512)
        assert fp["qkv_proj"][0] == 3 * 1024 * 512 * 2

    def test_attention_backward_is_8nd(self):
        """The 8Nd backward footprint (q,k,v,o,do,dq,dk,dv) of §3.1."""
        fp = table2_footprint(100, 64)
        assert fp["attention"][1] == 8 * 100 * 64 * 2


class TestMemoryComponents:
    def test_fpdt_working_set_shrinks_with_chunks(self):
        big = FPDT_FULL.with_chunk_tokens("256K")
        small = FPDT_FULL.with_chunk_tokens("32K")
        m_big = estimate_memory(LLAMA_8B, big, S, 8)
        m_small = estimate_memory(LLAMA_8B, small, S, 8)
        assert m_small.working_set < m_big.working_set

    def test_offload_removes_cached_kv_from_device(self):
        m_off = estimate_memory(LLAMA_8B, FPDT_FULL, S, 8)
        m_on = estimate_memory(LLAMA_8B, FPDT_CHUNKED, S, 8)
        assert m_off.working_set < m_on.working_set
        assert m_off.host_bytes > m_on.host_bytes

    def test_megatron_working_set_does_not_shrink_with_world(self):
        """§2.2: Megatron-SP's gathered activations scale with s_global
        regardless of device count."""
        m4 = estimate_memory(LLAMA_8B, MEGATRON_SP, S, 4)
        m8 = estimate_memory(LLAMA_8B, MEGATRON_SP, S, 8)
        # gathered part (2 * s * H) identical; only sliced parts shrink
        assert m8.working_set > 0.5 * m4.working_set

    def test_ulysses_working_set_shrinks_with_world(self):
        m4 = estimate_memory(LLAMA_8B, ULYSSES, S, 4)
        m8 = estimate_memory(LLAMA_8B, ULYSSES, S, 8)
        assert m8.working_set == pytest.approx(m4.working_set / 2, rel=0.01)

    def test_loss_head_chunked_only_for_fpdt(self):
        m_ul = estimate_memory(LLAMA_8B, ULYSSES, S, 8)
        m_fp = estimate_memory(LLAMA_8B, FPDT_FULL, S, 8)
        assert m_fp.loss_head < m_ul.loss_head / 10

    def test_no_ac_explodes_checkpoints(self):
        no_ac = TrainingStrategy(
            name="ul-noac", parallelism="ulysses", zero_stage=3,
            activation_checkpoint=False, checkpoint_offload=False,
        )
        m_ac = estimate_memory(LLAMA_8B, ULYSSES, S, 8)
        m_no = estimate_memory(LLAMA_8B, no_ac, S, 8)
        assert m_no.checkpoints > 20 * m_ac.checkpoints

    def test_checkpoint_offload_moves_to_host(self):
        keep = TrainingStrategy(
            name="ul-ac", parallelism="ulysses", zero_stage=3,
            activation_checkpoint=True, checkpoint_offload=False,
        )
        m_keep = estimate_memory(LLAMA_8B, keep, S, 8)
        m_off = estimate_memory(LLAMA_8B, ULYSSES, S, 8)
        assert m_off.checkpoints < m_keep.checkpoints
        assert m_off.host_bytes > m_keep.host_bytes

    def test_optimizer_on_host_reduces_model_states(self):
        m_dev = estimate_memory(LLAMA_8B, FPDT_FULL, S, 8, optimizer_on_host=False)
        m_host = estimate_memory(LLAMA_8B, FPDT_FULL, S, 8, optimizer_on_host=True)
        assert m_host.model_states < m_dev.model_states
        assert m_host.host_bytes > m_dev.host_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_memory(LLAMA_8B, ULYSSES, 0, 8)
        with pytest.raises(ValueError):
            estimate_memory(LLAMA_8B, ULYSSES, S, 0)


class TestPaperAnchors:
    """Measured HBM anchors from Table 3 (Llama-8B, 8x A100-80G)."""

    def test_ulysses_512k_near_60g(self):
        m = estimate_memory(LLAMA_8B, ULYSSES, S, 8)
        assert m.device_total == pytest.approx(60.1 * GIB, rel=0.25)

    def test_megatron_512k_near_787g(self):
        m = estimate_memory(LLAMA_8B, MEGATRON_SP, S, 8)
        assert m.device_total == pytest.approx(78.7 * GIB, rel=0.25)

    def test_fpdt_4m_near_68g(self):
        m = estimate_memory(LLAMA_8B, FPDT_FULL, parse_tokens("4M"), 8)
        assert m.device_total == pytest.approx(68.0 * GIB, rel=0.15)

    def test_fpdt_uses_far_less_than_ulysses_at_512k(self):
        m_fp = estimate_memory(LLAMA_8B, FPDT_FULL, S, 8)
        m_ul = estimate_memory(LLAMA_8B, ULYSSES, S, 8)
        assert m_fp.activations < 0.5 * m_ul.activations
