"""Latency model and pipeline-simulator tests: the Fig. 10 crossover,
Fig. 8/9 starvation vs saturation, double-buffer overlap."""

import pytest

from repro.common.errors import ScheduleError
from repro.common.units import parse_tokens
from repro.hardware import make_cluster, paper_node_a100_80g
from repro.models import LLAMA_8B
from repro.perfmodel import (
    FPDT_FULL,
    MEGATRON_SP,
    ULYSSES,
    StreamSimulator,
    Task,
    alltoall_latency,
    attention_backward_latency,
    attention_forward_latency,
    fetch_latency,
    simulate_fpdt_layer,
    simulate_step_time,
)
from repro.perfmodel.latency import fpdt_chunk_bytes

NODE = paper_node_a100_80g()
CLUSTER4 = make_cluster(NODE, 4)


class TestLatencyModel:
    def test_attention_quadratic(self):
        kw = dict(batch=1, heads=8, head_dim=128)
        t1 = attention_forward_latency(NODE.gpu, sq=16384, sk=16384, **kw)
        t2 = attention_forward_latency(NODE.gpu, sq=32768, sk=32768, **kw)
        assert t2 == pytest.approx(4 * t1)

    def test_backward_is_2_5x_forward(self):
        kw = dict(batch=1, sq=8192, sk=8192, heads=8, head_dim=128)
        assert attention_backward_latency(NODE.gpu, **kw) == pytest.approx(
            2.5 * attention_forward_latency(NODE.gpu, **kw)
        )

    def test_fetch_linear(self):
        t1 = fetch_latency(NODE, 100 * 2**20)
        t2 = fetch_latency(NODE, 200 * 2**20)
        assert (t2 - NODE.pcie.latency) > 1.9 * (t1 - NODE.pcie.latency) * 0.9

    def test_figure10_crossover_between_16k_and_128k(self):
        """§4.2: attention overtakes fetch at 32-64K chunk tokens (our
        calibration puts it in the same 16K-128K window)."""
        h_local = LLAMA_8B.num_heads // 4

        def attn(c):
            return attention_forward_latency(
                NODE.gpu, batch=1, sq=c, sk=c, heads=h_local, head_dim=LLAMA_8B.head_dim
            )

        def fetch(c):
            return fetch_latency(NODE, fpdt_chunk_bytes(LLAMA_8B, c, 4))

        assert attn(parse_tokens("8K")) < fetch(parse_tokens("8K"))
        assert attn(parse_tokens("128K")) > fetch(parse_tokens("128K"))

    def test_gather_scatter_beats_per_gpu_at_small_sizes(self):
        """Fig. 10: the per-GPU strategy pays contention overhead that
        dominates at small transfers."""
        small = 64 * 2**10
        per_gpu = fetch_latency(NODE, small, strategy="per-gpu")
        gs = fetch_latency(NODE, small, strategy="gather-scatter")
        assert gs < per_gpu

    def test_per_gpu_wins_at_large_sizes_and_both_hide_behind_attention(self):
        """At large sizes per-GPU fetch uses every PCIe root in parallel
        and beats gather-scatter; the paper's point is that *both* are
        dwarfed by attention compute there, so the simpler per-GPU
        strategy (no extra synchronization) is the right choice."""
        c = parse_tokens("512K")
        big = fpdt_chunk_bytes(LLAMA_8B, c, 4)
        per_gpu = fetch_latency(NODE, big, strategy="per-gpu")
        gs = fetch_latency(NODE, big, strategy="gather-scatter")
        assert per_gpu <= gs
        attn = attention_forward_latency(
            NODE.gpu, batch=1, sq=c, sk=c,
            heads=LLAMA_8B.num_heads // 4, head_dim=LLAMA_8B.head_dim,
        )
        assert attn > 5 * per_gpu and attn > 5 * gs

    def test_unknown_fetch_strategy(self):
        with pytest.raises(ValueError):
            fetch_latency(NODE, 100, strategy="magic")

    def test_alltoall_single_rank_is_free(self):
        assert alltoall_latency(make_cluster(NODE, 1), 2**20) == 0.0

    def test_alltoall_internode_slower(self):
        intra = alltoall_latency(make_cluster(NODE, 4), 2**24)
        inter = alltoall_latency(make_cluster(NODE, 8), 2**24)
        assert inter > intra


class TestStreamSimulator:
    def test_sequential_on_one_resource(self):
        res = StreamSimulator().run(
            [Task("a", "compute", 1.0), Task("b", "compute", 2.0)]
        )
        assert res.task_times["b"] == (1.0, 3.0)
        assert res.makespan == 3.0

    def test_parallel_on_two_resources(self):
        res = StreamSimulator().run(
            [Task("a", "compute", 1.0), Task("b", "h2d", 2.0)]
        )
        assert res.makespan == 2.0

    def test_dependency_delays_start(self):
        res = StreamSimulator().run(
            [Task("a", "h2d", 2.0), Task("b", "compute", 1.0, ("a",))]
        )
        assert res.task_times["b"] == (2.0, 3.0)

    def test_unknown_dep_raises(self):
        with pytest.raises(ScheduleError):
            StreamSimulator().run([Task("b", "compute", 1.0, ("ghost",))])

    def test_duplicate_id_raises(self):
        with pytest.raises(ScheduleError):
            StreamSimulator().run([Task("a", "c", 1.0), Task("a", "c", 1.0)])

    def test_negative_duration_raises(self):
        with pytest.raises(ScheduleError):
            StreamSimulator().run([Task("a", "c", -1.0)])

    def test_utilization(self):
        res = StreamSimulator().run(
            [Task("a", "compute", 1.0), Task("b", "h2d", 4.0)]
        )
        assert res.utilization("compute") == pytest.approx(0.25)
        assert res.utilization("h2d") == 1.0


class TestFPDTPipeline:
    S = parse_tokens("512K")

    def test_small_chunks_starve_compute(self):
        """Fig. 8: with tiny chunks the fetch latency exceeds the per-
        chunk attention time and compute utilization drops."""
        small = simulate_fpdt_layer(LLAMA_8B, CLUSTER4, self.S, parse_tokens("4K"), phase="backward")
        big = simulate_fpdt_layer(LLAMA_8B, CLUSTER4, self.S, parse_tokens("64K"), phase="backward")
        assert big.utilization("compute") > small.utilization("compute")

    def test_double_buffer_hides_fetches(self):
        """Disabling the double buffer serializes fetch with compute and
        lengthens the backward pipeline."""
        with_db = simulate_fpdt_layer(
            LLAMA_8B, CLUSTER4, self.S, parse_tokens("32K"),
            phase="backward", double_buffer=True,
        )
        without = simulate_fpdt_layer(
            LLAMA_8B, CLUSTER4, self.S, parse_tokens("32K"),
            phase="backward", double_buffer=False,
        )
        assert without.makespan > with_db.makespan

    def test_offload_overhead_small_at_sweet_spot(self):
        """§5.3: at the 64K sweet spot, offloading costs almost nothing
        versus keeping chunks in HBM."""
        off = simulate_fpdt_layer(LLAMA_8B, CLUSTER4, self.S, parse_tokens("64K"), offload=True)
        kept = simulate_fpdt_layer(LLAMA_8B, CLUSTER4, self.S, parse_tokens("64K"), offload=False)
        assert off.makespan <= kept.makespan * 1.15

    def test_forward_and_backward_nonzero(self):
        for phase in ("forward", "backward"):
            res = simulate_fpdt_layer(LLAMA_8B, CLUSTER4, self.S, parse_tokens("64K"), phase=phase)
            assert res.makespan > 0

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            simulate_fpdt_layer(LLAMA_8B, CLUSTER4, self.S, 1024, phase="sideways")


class TestStepTime:
    def test_fpdt_mfu_beats_ulysses_at_long_context(self):
        s = parse_tokens("512K")
        t_fp = simulate_step_time(LLAMA_8B, FPDT_FULL, s, 8, NODE)
        t_ul = simulate_step_time(LLAMA_8B, ULYSSES, s, 8, NODE)
        assert t_fp < t_ul  # FPDT skips attention recompute

    def test_megatron_degrades_across_nodes(self):
        """§5.2: Megatron-SP's all-gathers hit InfiniBand once the group
        spans nodes; Ulysses' all-to-all volume stays modest."""
        s = parse_tokens("256K")
        t_mp = simulate_step_time(LLAMA_8B, MEGATRON_SP, s, 8, NODE)
        t_ul = simulate_step_time(LLAMA_8B, ULYSSES, s, 8, NODE)
        assert t_mp > t_ul

    def test_step_time_increases_with_sequence(self):
        t1 = simulate_step_time(LLAMA_8B, FPDT_FULL, parse_tokens("256K"), 8, NODE)
        t2 = simulate_step_time(LLAMA_8B, FPDT_FULL, parse_tokens("512K"), 8, NODE)
        assert t2 > t1


class TestHierarchicalAlltoallLatency:
    def test_multi_node_beats_flat(self):
        """Node-aggregated staging moves less data over InfiniBand than a
        flat all-to-all, so the modeled time drops."""
        from repro.perfmodel.latency import hierarchical_alltoall_latency

        cluster8 = make_cluster(NODE, 8)  # 2 nodes
        nbytes = 256 * 2**20
        flat = alltoall_latency(cluster8, nbytes)
        hier = hierarchical_alltoall_latency(cluster8, nbytes)
        assert hier < flat

    def test_single_node_equals_flat(self):
        from repro.perfmodel.latency import hierarchical_alltoall_latency

        cluster4 = make_cluster(NODE, 4)
        nbytes = 64 * 2**20
        assert hierarchical_alltoall_latency(cluster4, nbytes) == pytest.approx(
            alltoall_latency(cluster4, nbytes)
        )

    def test_single_rank_free(self):
        from dataclasses import replace
        from repro.perfmodel.latency import hierarchical_alltoall_latency

        cluster1 = make_cluster(NODE, 1)
        assert hierarchical_alltoall_latency(cluster1, 2**20) == 0.0
