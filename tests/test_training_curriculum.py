"""Length-curriculum schedule and trainer integration."""

import numpy as np
import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt
from repro.runtime import VirtualCluster
from repro.training import SyntheticCorpus
from repro.training.curriculum import LengthCurriculum, curriculum_train
from repro.training.trainer import Trainer


class TestLengthCurriculum:
    def test_doubling_ladder(self):
        cur = LengthCurriculum(start_len=8, target_len=64, steps_per_stage=3)
        lengths = [cur.length_at(s) for s in range(12)]
        assert lengths == [8, 8, 8, 16, 16, 16, 32, 32, 32, 64, 64, 64]

    def test_caps_at_target(self):
        cur = LengthCurriculum(start_len=8, target_len=32, steps_per_stage=1)
        assert cur.length_at(100) == 32

    def test_stage_accounting(self):
        cur = LengthCurriculum(start_len=8, target_len=64, steps_per_stage=5)
        assert cur.num_stages == 4
        assert cur.total_warmup_steps() == 15
        assert cur.length_at(cur.total_warmup_steps()) == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            LengthCurriculum(start_len=0, target_len=8, steps_per_stage=1)
        with pytest.raises(ValueError):
            LengthCurriculum(start_len=16, target_len=8, steps_per_stage=1)
        with pytest.raises(ValueError):
            LengthCurriculum(start_len=8, target_len=24, steps_per_stage=1)  # not 2^k
        with pytest.raises(ValueError):
            LengthCurriculum(start_len=8, target_len=16, steps_per_stage=0)
        cur = LengthCurriculum(start_len=8, target_len=16, steps_per_stage=1)
        with pytest.raises(ValueError):
            cur.length_at(-1)

    def test_degenerate_constant(self):
        cur = LengthCurriculum(start_len=16, target_len=16, steps_per_stage=4)
        assert cur.num_stages == 1
        assert cur.total_warmup_steps() == 0
        assert cur.length_at(0) == cur.length_at(99) == 16


class TestCurriculumTraining:
    def test_fpdt_trainer_through_curriculum(self):
        """FPDT handles the growing sequence (chunk count grows with it)
        and the loss still falls."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1, vocab_size=32)
        model = GPTModel(cfg, seed=1)
        corpus = SyntheticCorpus(32, branching=2, seed=1)
        runner = FPDTModelRunner(
            model, VirtualCluster(4), num_chunks=2, loss_chunks=2
        )
        trainer = Trainer(model, corpus, runner=runner, lr=5e-3)
        cur = LengthCurriculum(start_len=8, target_len=32, steps_per_stage=10)
        result = curriculum_train(trainer, cur, 40, batch_size=2)
        assert len(result.losses) == 40
        assert np.mean(result.losses[-5:]) < np.mean(result.losses[:5])
        # tokens_seen reflects the growing lengths, not a constant.
        assert result.tokens_seen > 40 * 2 * 8
        assert result.tokens_seen < 40 * 2 * 32
