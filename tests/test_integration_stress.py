"""Stress integration: the largest toy-scale FPDT run in the suite —
8 ranks, deep chunk pipeline, GQA + window, forward + backward + step —
exercising scheduling paths (prefetch windows, chunk counts) that small
configs cannot reach."""

import numpy as np

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_llama
from repro.runtime import VirtualCluster

from .helpers import rng


class TestStressLargeToy:
    def test_deep_pipeline_step(self):
        world, num_chunks, s = 8, 8, 512
        cfg = tiny_llama(
            hidden_size=64, num_heads=8, num_kv_heads=4, num_layers=2, vocab_size=64
        ).scaled(attention_window=192)
        model = GPTModel(cfg, seed=0)
        cluster = VirtualCluster(world)
        runner = FPDTModelRunner(
            model, cluster, num_chunks=num_chunks,
            offload=True, activation_checkpoint=True, loss_chunks=4,
        )
        g = rng(1)
        tokens = g.integers(0, cfg.vocab_size, size=(1, s))
        labels = g.integers(0, cfg.vocab_size, size=(1, s))
        loss, grads = runner.forward_backward(tokens, labels)
        assert np.isfinite(loss)
        assert all(np.isfinite(v).all() for v in grads.values())
        cluster.check_no_leaks()
        # Deep pipeline really ran: u chunks x 4 a2a per chunk per layer
        # in the forward, plus recompute and backward.
        a2a = cluster.trace.filter(kind="collective", label_prefix="all_to_all:fpdt")
        assert len(a2a) >= 2 * num_chunks * 4
        # Offload traffic flowed both ways and host drained fully.
        assert cluster.trace.total_bytes("d2h") > 0
        assert cluster.host.pool.in_use == 0

    def test_matches_reference_at_scale(self):
        world, num_chunks, s = 8, 8, 256
        cfg = tiny_llama(
            hidden_size=64, num_heads=8, num_kv_heads=2, num_layers=1, vocab_size=64
        )
        g = rng(2)
        tokens = g.integers(0, cfg.vocab_size, size=(1, s))
        labels = g.integers(0, cfg.vocab_size, size=(1, s))
        ref = GPTModel(cfg, seed=3)
        ref_loss = ref.forward_loss(tokens, labels)
        ref.backward_loss()
        model = GPTModel(cfg, seed=3)
        runner = FPDTModelRunner(
            model, VirtualCluster(world), num_chunks=num_chunks, loss_chunks=4
        )
        loss, grads = runner.forward_backward(tokens, labels)
        assert abs(loss - ref_loss) < 1e-10
        np.testing.assert_allclose(
            grads["embed.table"], ref.all_grads()["embed.table"], rtol=1e-6, atol=1e-8
        )
