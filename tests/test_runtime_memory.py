"""Unit tests for memory pools, device tensors and virtual devices."""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.common.errors import OutOfMemoryError
from repro.runtime import MemoryPool, VirtualCluster
from repro.runtime.tensor import DeviceTensor, storage_nbytes


class TestMemoryPool:
    def test_alloc_free_roundtrip(self):
        pool = MemoryPool("p", 100)
        a = pool.alloc(60, "x")
        assert pool.in_use == 60
        pool.free(a)
        assert pool.in_use == 0

    def test_peak_tracks_high_watermark(self):
        pool = MemoryPool("p")
        a = pool.alloc(10)
        b = pool.alloc(30)
        pool.free(a)
        c = pool.alloc(5)
        assert pool.peak == 40
        pool.free(b)
        pool.free(c)
        assert pool.peak == 40

    def test_oom_raises_with_context(self):
        pool = MemoryPool("cuda:0", 100)
        pool.alloc(90, "act")
        with pytest.raises(OutOfMemoryError) as exc:
            pool.alloc(20, "buf")
        assert exc.value.capacity == 100
        assert exc.value.in_use == 90
        assert exc.value.requested == 20

    def test_oom_boundary_exact_fit_ok(self):
        pool = MemoryPool("p", 100)
        pool.alloc(100)
        with pytest.raises(OutOfMemoryError):
            pool.alloc(1)

    def test_double_free_raises(self):
        pool = MemoryPool("p")
        a = pool.alloc(10)
        pool.free(a)
        with pytest.raises(KeyError):
            pool.free(a)

    def test_negative_alloc_raises(self):
        pool = MemoryPool("p")
        with pytest.raises(ValueError):
            pool.alloc(-1)

    def test_usage_by_tag_breakdown(self):
        pool = MemoryPool("p")
        pool.alloc(10, "params")
        a = pool.alloc(20, "act")
        pool.alloc(5, "act")
        assert pool.usage_by_tag() == {"params": 10, "act": 25}
        pool.free(a)
        assert pool.usage_by_tag() == {"params": 10, "act": 5}

    def test_usage_by_tag_does_not_accumulate_dead_tags(self):
        """Unique-tag alloc/free cycles (FPDT names chunks per step) must
        not leak zero-byte entries into the per-tag breakdown."""
        pool = MemoryPool("p")
        for i in range(200):
            alloc = pool.alloc(16, f"chunk:{i}")
            pool.free(alloc)
        assert pool.in_use == 0
        assert pool.usage_by_tag() == {}
        assert len(pool._usage_by_tag) == 0

    def test_timeline_recording(self):
        pool = MemoryPool("p", record_timeline=True)
        a = pool.alloc(10, "x")
        pool.free(a)
        assert [s.event for s in pool.timeline] == ["alloc:x", "free:x"]
        assert [s.in_use for s in pool.timeline] == [10, 0]

    def test_reset_peak(self):
        pool = MemoryPool("p")
        a = pool.alloc(100)
        pool.free(a)
        pool.reset_peak()
        assert pool.peak == 0
        pool.alloc(10)
        assert pool.peak == 10

    def test_check_empty_detects_leaks(self):
        pool = MemoryPool("p")
        pool.alloc(10, "leaked")
        with pytest.raises(AssertionError, match="leaked"):
            pool.check_empty()

    def test_total_allocated_is_cumulative(self):
        pool = MemoryPool("p")
        a = pool.alloc(10)
        pool.free(a)
        pool.alloc(10)
        assert pool.total_allocated == 20
        assert pool.n_allocs == 2


class TestDeviceTensor:
    def test_storage_accounting_uses_storage_dtype(self):
        # float32 numpy data accounted as bf16: half the numpy bytes.
        assert storage_nbytes((4, 8), DType.BF16) == 64

    def test_tensor_charges_pool(self):
        pool = MemoryPool("p")
        t = DeviceTensor(np.zeros((4, 8), np.float32), DType.BF16, pool, "x")
        assert pool.in_use == 64
        t.free()
        assert pool.in_use == 0

    def test_free_returns_data(self):
        pool = MemoryPool("p")
        arr = np.arange(6.0).reshape(2, 3)
        t = DeviceTensor(arr, DType.FP32, pool, "x")
        out = t.free()
        np.testing.assert_array_equal(out, arr)
        assert not t.is_live

    def test_double_free_raises(self):
        pool = MemoryPool("p")
        t = DeviceTensor(np.zeros(3), DType.FP32, pool, "x")
        t.free()
        with pytest.raises(RuntimeError, match="double free"):
            t.free()


class TestVirtualCluster:
    def test_scatter_gather_roundtrip(self):
        cluster = VirtualCluster(4)
        x = np.arange(32.0).reshape(1, 8, 4)
        shards = cluster.scatter(x, axis=1, dtype=DType.FP32, tag="x")
        assert all(s.shape == (1, 2, 4) for s in shards)
        out = cluster.gather(shards, axis=1, free=True)
        np.testing.assert_array_equal(out, x)
        cluster.check_no_leaks()

    def test_scatter_requires_divisibility(self):
        cluster = VirtualCluster(4)
        with pytest.raises(ValueError):
            cluster.scatter(np.zeros((1, 6)), axis=1, dtype=DType.FP32, tag="x")

    def test_offload_moves_bytes_to_host(self):
        cluster = VirtualCluster(2)
        dev = cluster.devices[0]
        t = dev.from_numpy(np.ones((4, 4), np.float32), DType.BF16, "kv")
        assert dev.hbm.in_use == 32
        h = cluster.host.offload(t, dev)
        assert dev.hbm.in_use == 0
        assert cluster.host.pool.in_use == 32
        back = cluster.host.fetch(h, dev)
        assert dev.hbm.in_use == 32
        np.testing.assert_array_equal(back.data, np.ones((4, 4)))
        back.free()

    def test_offload_records_pcie_traffic(self):
        cluster = VirtualCluster(2)
        dev = cluster.devices[1]
        t = dev.from_numpy(np.ones((4, 4), np.float32), DType.BF16, "kv")
        h = cluster.host.offload(t, dev)
        cluster.host.fetch(h, dev).free()
        assert cluster.trace.total_bytes("d2h") == 32
        assert cluster.trace.total_bytes("h2d") == 32

    def test_offload_wrong_device_raises(self):
        cluster = VirtualCluster(2)
        t = cluster.devices[0].from_numpy(np.ones(2), DType.FP32, "x")
        with pytest.raises(ValueError):
            cluster.host.offload(t, cluster.devices[1])
        t.free()

    def test_peak_hbm_is_max_over_ranks(self):
        cluster = VirtualCluster(2)
        cluster.devices[0].from_numpy(np.ones(2, np.float32), DType.FP32, "a").free()
        cluster.devices[1].from_numpy(np.ones(8, np.float32), DType.FP32, "b").free()
        assert cluster.peak_hbm() == 32

    def test_hbm_capacity_enforced_per_device(self):
        cluster = VirtualCluster(2, hbm_capacity=16)
        with pytest.raises(OutOfMemoryError):
            cluster.devices[0].zeros((100,), DType.FP32, "big")

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            VirtualCluster(0)
