"""Model-level Megatron-SP runner: reference equivalence and the
full-sequence-gather memory signature."""

import numpy as np
import pytest

from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.parallel import MegatronModelRunner, UlyssesModelRunner
from repro.runtime import VirtualCluster

from .helpers import rng

WORLD = 4


def _data(cfg, seed=0, b=1, s=32):
    g = rng(seed)
    return (
        g.integers(0, cfg.vocab_size, size=(b, s)),
        g.integers(0, cfg.vocab_size, size=(b, s)),
    )


@pytest.mark.parametrize(
    "cfg_factory",
    [
        pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4, num_layers=2), id="gpt"),
        pytest.param(
            lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=4, num_layers=2),
            id="llama",
        ),
    ],
)
class TestMegatronModelEquivalence:
    def test_loss_and_grads_match_reference(self, cfg_factory):
        cfg = cfg_factory()
        tokens, labels = _data(cfg)
        ref = GPTModel(cfg, seed=0)
        ref_loss = ref.forward_loss(tokens, labels)
        ref.backward_loss()
        ref_grads = ref.all_grads()

        model = GPTModel(cfg, seed=0)
        runner = MegatronModelRunner(model, VirtualCluster(WORLD))
        loss, grads = runner.forward_backward(tokens, labels)
        assert loss == pytest.approx(ref_loss, rel=1e-10)
        assert set(grads) == set(ref_grads)
        for name in ref_grads:
            np.testing.assert_allclose(
                grads[name], ref_grads[name], rtol=1e-6, atol=1e-9, err_msg=name
            )


class TestMegatronMemorySignature:
    def test_megatron_peak_exceeds_ulysses_at_model_level(self):
        """Megatron-SP gathers the full normed sequence on every rank
        each layer; Ulysses gathers only 1/P of the heads — the §2.2
        comparison, measured at model level."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2)
        tokens, labels = _data(cfg, seed=2, s=64)
        peaks = {}
        for name, cls in [("mp", MegatronModelRunner), ("ul", UlyssesModelRunner)]:
            model = GPTModel(cfg, seed=0)
            cluster = VirtualCluster(WORLD)
            cls(model, cluster).forward_backward(tokens, labels)
            peaks[name] = cluster.peak_hbm()
        assert peaks["mp"] > peaks["ul"]

    def test_divisibility_enforced_through_model(self):
        cfg = tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=1)
        model = GPTModel(cfg, seed=0)
        runner = MegatronModelRunner(model, VirtualCluster(WORLD))
        tokens, labels = _data(cfg, seed=3)
        with pytest.raises(ValueError, match="divisible"):
            runner.forward_backward(tokens, labels)
