"""API-quality meta-tests: every public symbol is documented and every
subpackage imports cleanly (catches broken __init__ exports early)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.common", "repro.hardware", "repro.runtime", "repro.models",
    "repro.parallel", "repro.core", "repro.perfmodel", "repro.training",
    "repro.experiments", "repro.profiler", "repro.telemetry",
]


def _walk_modules():
    out = []
    for pkg_name in SUBPACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg_name)
        for info in pkgutil.iter_modules(pkg.__path__):
            out.append(f"{pkg_name}.{info.name}")
    return out


class TestImports:
    @pytest.mark.parametrize("module_name", _walk_modules())
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    def test_all_exports_resolve(self):
        """Every name in a package's __all__ actually exists."""
        for pkg_name in SUBPACKAGES:
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.{name}"


class TestDocstrings:
    @pytest.mark.parametrize("module_name", _walk_modules())
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    def test_public_functions_and_classes_documented(self):
        undocumented = []
        for module_name in _walk_modules():
            module = importlib.import_module(module_name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                    continue
                if getattr(obj, "__module__", None) != module_name:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"undocumented public API: {undocumented[:10]}"
