"""Sliding-window attention (extension): kernel correctness, strategy
equivalence, and FPDT's fetch/compute skipping of out-of-window chunks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ShapeError
from repro.core import ChunkLayout, fpdt_block_backward, fpdt_block_forward
from repro.core.chunking import shard_sequence, unshard_sequence
from repro.models import TransformerBlock, tiny_gpt, tiny_llama
from repro.models.attention import (
    attention_backward_reference,
    attention_forward_reference,
    block_is_visible,
    online_attention_backward,
    online_attention_forward,
)
from repro.parallel import (
    megatron_block_forward,
    ring_block_forward,
    ulysses_block_forward,
)
from repro.runtime import VirtualCluster

from .helpers import rng

WORLD = 4


def _qkv(seed=0, s=12, h=2, d=4):
    g = rng(seed)
    return (
        g.normal(size=(1, s, h, d)),
        g.normal(size=(1, s, h, d)),
        g.normal(size=(1, s, h, d)),
    )


class TestWindowedKernels:
    def test_window_hides_distant_past(self):
        q, k, v = _qkv(0, s=8)
        o_full, _ = attention_forward_reference(q, k, v)
        o_win, _ = attention_forward_reference(q, k, v, window=2)
        # Position 0 sees only itself either way.
        np.testing.assert_allclose(o_win[:, 0], o_full[:, 0], rtol=1e-12)
        # Later positions differ (they lost distant context).
        assert not np.allclose(o_win[:, -1], o_full[:, -1])

    def test_window_one_is_self_attention(self):
        q, k, v = _qkv(1, s=6)
        o, _ = attention_forward_reference(q, k, v, window=1)
        np.testing.assert_allclose(o, v, rtol=1e-12)

    def test_huge_window_equals_full_causal(self):
        q, k, v = _qkv(2, s=6)
        o_full, _ = attention_forward_reference(q, k, v)
        o_win, _ = attention_forward_reference(q, k, v, window=100)
        np.testing.assert_allclose(o_win, o_full, rtol=1e-12)

    def test_changing_out_of_window_tokens_has_no_effect(self):
        q, k, v = _qkv(3, s=10)
        o1, _ = attention_forward_reference(q, k, v, window=3)
        k2, v2 = k.copy(), v.copy()
        k2[:, :4] += 100.0  # positions 0..3 are out of window for q at 7..9
        v2[:, :4] -= 50.0
        o2, _ = attention_forward_reference(q, k2, v2, window=3)
        np.testing.assert_allclose(o1[:, 7:], o2[:, 7:], rtol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        s=st.integers(2, 12),
        window=st.integers(1, 14),
        block=st.integers(1, 12),
        seed=st.integers(0, 500),
    )
    def test_property_online_matches_reference_with_window(self, s, window, block, seed):
        q, k, v = _qkv(seed, s=s, h=1)
        o_ref, _ = attention_forward_reference(q, k, v, window=window)
        o, _ = online_attention_forward(q, k, v, block_q=block, block_k=block, window=window)
        np.testing.assert_allclose(o, o_ref, rtol=1e-8, atol=1e-10)

    def test_online_backward_matches_reference_with_window(self):
        q, k, v = _qkv(4, s=10)
        do = rng(5).normal(size=q.shape)
        o_ref, cache = attention_forward_reference(q, k, v, window=4)
        refs = attention_backward_reference(do, cache)
        o, lse = online_attention_forward(q, k, v, block_q=3, block_k=3, window=4)
        outs = online_attention_backward(
            q, k, v, o, do, lse, block_q=3, block_k=3, window=4
        )
        for got, ref in zip(outs, refs):
            np.testing.assert_allclose(got, ref, rtol=1e-8, atol=1e-10)

    def test_window_requires_causal(self):
        q, k, v = _qkv(6, s=4)
        with pytest.raises(ShapeError):
            attention_forward_reference(q, k, v, causal=False, window=2)

    def test_block_visibility_predicate(self):
        # 4-token blocks; q block at 8, k block at 0, window 4: hidden.
        assert not block_is_visible(4, 4, 8, 0, window=4)
        # window 6 reaches position 3 < 8-6+... q_min=8 sees (2, 8] -> k 3 visible.
        assert block_is_visible(4, 4, 8, 0, window=6)
        # future block stays hidden regardless of window.
        assert not block_is_visible(4, 4, 0, 8, window=100)


class TestWindowedStrategies:
    def _case(self, cfg, seed=0, s_local=4):
        block = TransformerBlock(cfg, rng(seed))
        x = rng(seed + 1).normal(size=(1, s_local * WORLD, cfg.hidden_size))
        y_ref = block.forward(x)
        return block, x, y_ref

    @pytest.mark.parametrize(
        "fwd",
        [ulysses_block_forward, ring_block_forward, megatron_block_forward],
        ids=["ulysses", "ring", "megatron"],
    )
    def test_baselines_respect_window(self, fwd):
        cfg = tiny_gpt(hidden_size=32, num_heads=4).scaled(attention_window=5)
        block, x, y_ref = self._case(cfg)
        cluster = VirtualCluster(WORLD)
        y_shards, _ = fwd(cluster, block.params, cfg, np.split(x, WORLD, axis=1))
        np.testing.assert_allclose(
            np.concatenate(y_shards, axis=1), y_ref, rtol=1e-8, atol=1e-10
        )


class TestWindowedFPDT:
    def _run(self, cfg, x, dy, num_chunks):
        layout = ChunkLayout(x.shape[1], WORLD, num_chunks)
        cluster = VirtualCluster(WORLD)
        block = TransformerBlock(cfg, rng(0))
        y_ref = block.forward(x)
        dx_ref = block.backward(dy)
        y_shards, ctx = fpdt_block_forward(
            cluster, block.params, cfg, layout, shard_sequence(x, layout)
        )
        dx_shards, grads = fpdt_block_backward(cluster, cfg, ctx, shard_sequence(dy, layout))
        cluster.check_no_leaks()
        return (
            unshard_sequence(y_shards, layout), y_ref,
            unshard_sequence(dx_shards, layout), dx_ref, cluster,
        )

    @pytest.mark.parametrize("window", [3, 16, 40])
    @pytest.mark.parametrize("arch", ["gpt", "llama"])
    def test_fpdt_matches_reference_with_window(self, window, arch):
        base = (
            tiny_gpt(hidden_size=32, num_heads=4)
            if arch == "gpt"
            else tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2)
        )
        cfg = base.scaled(attention_window=window)
        g = rng(7)
        x = g.normal(size=(1, 32, cfg.hidden_size))
        dy = g.normal(size=x.shape)
        y, y_ref, dx, dx_ref, _ = self._run(cfg, x, dy, num_chunks=4)
        np.testing.assert_allclose(y, y_ref, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(dx, dx_ref, rtol=1e-8, atol=1e-10)

    def test_window_skips_fetches(self):
        """The extension's payoff: with a window of one gathered chunk,
        out-of-window KV chunks are never fetched from host, so H2D
        traffic drops substantially vs full causal attention."""
        g = rng(8)
        base = tiny_gpt(hidden_size=32, num_heads=4)
        x = g.normal(size=(1, 128, base.hidden_size))
        dy = g.normal(size=x.shape)
        traffic = {}
        for window in (None, 16):  # 16 = one gathered chunk (128/8)
            cfg = base.scaled(attention_window=window)
            *_, cluster = self._run(cfg, x, dy, num_chunks=8)
            traffic[window] = cluster.trace.total_bytes("h2d")
        # Full causal touches O(u^2) chunk pairs; a one-chunk window
        # touches O(u) — at u=8 that's a >2x traffic cut.
        assert traffic[16] < 0.5 * traffic[None]

    def test_windowed_compute_flops_reduced(self):
        g = rng(9)
        base = tiny_gpt(hidden_size=32, num_heads=4)
        x = g.normal(size=(1, 64, base.hidden_size))
        dy = g.normal(size=x.shape)
        flops = {}
        for window in (None, 16):
            cfg = base.scaled(attention_window=window)
            *_, cluster = self._run(cfg, x, dy, num_chunks=4)
            flops[window] = cluster.trace.total_flops()
        assert flops[16] < flops[None]

    def test_window_validation_in_config(self):
        with pytest.raises(ValueError):
            tiny_gpt().scaled(attention_window=0)
