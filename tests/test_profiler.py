"""Tests for the simulated-time profiler (trace replay, rollups,
Chrome-trace export) and the offload-ordering semantics it depends on."""

import json
from collections import defaultdict
from dataclasses import replace

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.core.offload import ChunkCache
from repro.hardware.specs import A100_80G, LinkSpec, NodeSpec, paper_node_a100_80g
from repro.hardware.topology import ClusterSpec
from repro.perfmodel.calibration import Calibration
from repro.perfmodel.latency import trace_event_latency
from repro.profiler import (
    cluster_memory_timelines,
    profile_cluster,
    replay_trace,
    run_profiled_step,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.runtime import VirtualCluster
from repro.runtime.trace import Trace

# A deliberately compute-bound testbed: a GPU 100,000x slower than an
# A100 against a free PCIe link, so any fetch hides behind compute.
FREE_PCIE = LinkSpec(name="free-pcie", bandwidth=float("inf"), latency=0.0, shared=True)
SLOW_GPU = replace(A100_80G, peak_flops_bf16=3.12e9, name="slow-a100")
NO_CONTENTION = Calibration(pcie_contention_overhead=0.0)


def _compute_bound_spec(world: int) -> ClusterSpec:
    node = NodeSpec(
        name="compute-bound", gpu=SLOW_GPU, gpus_per_node=world, pcie=FREE_PCIE
    )
    return ClusterSpec(node=node, num_nodes=1)


def _slow_gpu_node(world: int) -> NodeSpec:
    """Slow GPU, *real* PCIe: compute dominates, fetches are hideable but
    not free — the regime where prefetch depth matters."""
    return NodeSpec(name="slow-node", gpu=SLOW_GPU, gpus_per_node=world)


class TestReplayBasics:
    def test_empty_trace(self):
        profile = replay_trace(Trace(), ClusterSpec(paper_node_a100_80g(), 1))
        assert profile.makespan == 0.0
        assert profile.timeline == []
        assert profile.rollup().overlap_efficiency == 1.0

    def test_compute_events_serialize_per_rank(self):
        trace = Trace()
        trace.record("compute", "gemm", rank=0, flops=1e12)
        trace.record("compute", "gemm", rank=0, flops=1e12)
        trace.record("compute", "gemm", rank=1, flops=1e12)
        profile = replay_trace(trace, ClusterSpec(paper_node_a100_80g(2), 1))
        r0 = profile.events(rank=0)
        assert r0[1].start == pytest.approx(r0[0].end)
        # Rank 1 runs concurrently with rank 0, not after it.
        assert profile.events(rank=1)[0].start == 0.0

    def test_collective_is_a_barrier(self):
        trace = Trace()
        trace.record("compute", "gemm", rank=0, flops=2e12)
        trace.record("compute", "gemm", rank=1, flops=1e12)
        trace.record("collective", "all_to_all:x", nbytes=1 << 20)
        trace.record("compute", "gemm", rank=1, flops=1e12)
        profile = replay_trace(trace, ClusterSpec(paper_node_a100_80g(2), 1))
        coll = profile.events(kind="collective")[0]
        # The barrier waits for the slowest rank's compute...
        assert coll.start == pytest.approx(profile.events(rank=0)[0].end)
        # ...and work after it resumes only once it completes.
        after = profile.events(rank=1, kind="compute")[1]
        assert after.start == pytest.approx(coll.end)

    def test_phase_markers_partition_rollups(self):
        trace = Trace()
        trace.mark_phase("fwd")
        trace.record("compute", "gemm", rank=0, flops=1e12)
        trace.mark_phase("bwd")
        trace.record("compute", "gemm", rank=0, flops=2e12)
        profile = replay_trace(trace, ClusterSpec(paper_node_a100_80g(1), 1))
        assert profile.phases() == ["fwd", "bwd"]
        fwd, bwd = profile.rollup("fwd"), profile.rollup("bwd")
        assert bwd.compute_time == pytest.approx(2 * fwd.compute_time)
        assert profile.rollup().compute_time == pytest.approx(
            fwd.compute_time + bwd.compute_time
        )

    def test_event_latency_routes_hierarchical_stages(self):
        spec = ClusterSpec(paper_node_a100_80g(4), 2)
        trace = Trace()
        intra = trace.record("collective", "all_to_all_intra:x", nbytes=1 << 20)
        inter = trace.record("collective", "all_to_all_inter:x", nbytes=1 << 20)
        t_intra = trace_event_latency(intra, spec)
        t_inter = trace_event_latency(inter, spec)
        assert t_intra < t_inter  # NVLink vs InfiniBand


class TestTimelineInvariants:
    def _profile(self, depth=2):
        return run_profiled_step(
            world=2, num_chunks=4, prefetch_depth=depth, node=_slow_gpu_node(2)
        ).profile

    def test_per_stream_monotone_and_disjoint(self):
        profile = self._profile()
        by_stream = defaultdict(list)
        for te in profile.timeline:
            if te.event.kind == "phase":
                continue
            by_stream[(te.event.rank, te.event.stream)].append(te)
        assert len(by_stream) > 3  # compute + prefetch + d2h per rank
        for key, events in by_stream.items():
            for a, b in zip(events, events[1:]):
                assert a.start <= b.start, key
                if key[1] != "compute":
                    # Stream-serialized transfers must not overlap.
                    assert b.start >= a.end - 1e-12, key

    def test_makespan_covers_every_event(self):
        profile = self._profile()
        assert profile.makespan == pytest.approx(
            max(te.end for te in profile.timeline)
        )
        assert all(te.end >= te.start for te in profile.timeline)

    def test_waits_follow_their_fetch(self):
        profile = self._profile()
        fetch_end = {}
        for te in profile.timeline:
            if te.event.kind == "h2d":
                fetch_end[(te.event.rank, te.event.label.split(":", 1)[1])] = te.end
            elif te.event.kind == "wait":
                key = (te.event.rank, te.event.label.split(":", 1)[1])
                assert key in fetch_end
                assert te.end >= fetch_end[key] - 1e-12


class TestOverlap:
    def test_exposed_comm_zero_when_compute_bound(self):
        """With the double buffer (depth >= 2), world 1 and free PCIe,
        every fetch hides behind the slow compute: zero exposed comm."""
        run = run_profiled_step(world=1, num_chunks=4, prefetch_depth=2)
        profile = replay_trace(
            run.cluster.trace, _compute_bound_spec(1), calib=NO_CONTENTION
        )
        rollup = profile.rollup()
        assert rollup.compute_time > 0
        assert rollup.exposed_comm == 0.0
        assert rollup.overlap_efficiency == 1.0

    def test_double_buffer_beats_single_buffer(self):
        """The paper's Fig. 7 claim, measured: depth 2 exposes strictly
        less H2D time than depth 1 on the same config."""
        node = _slow_gpu_node(2)
        deep = run_profiled_step(world=2, num_chunks=4, prefetch_depth=2, node=node)
        shallow = run_profiled_step(world=2, num_chunks=4, prefetch_depth=1, node=node)
        exp2 = deep.profile.rollup().exposed_h2d
        exp1 = shallow.profile.rollup().exposed_h2d
        assert exp2 < exp1
        # And both runs compute the same numbers.
        assert deep.loss == pytest.approx(shallow.loss)

    def test_depth1_also_slower_end_to_end(self):
        node = _slow_gpu_node(2)
        deep = run_profiled_step(world=2, num_chunks=4, prefetch_depth=2, node=node)
        shallow = run_profiled_step(world=2, num_chunks=4, prefetch_depth=1, node=node)
        assert deep.profile.makespan < shallow.profile.makespan

    def test_mfu_positive_and_bounded(self):
        profile = run_profiled_step(
            world=2, num_chunks=4, node=_slow_gpu_node(2)
        ).profile
        rollup = profile.rollup()
        assert 0 < rollup.mfu <= 1.0
        for phase_rollup in profile.phase_rollups():
            assert 0 <= phase_rollup.mfu <= 1.0


class TestChromeTrace:
    def _run(self):
        return run_profiled_step(world=2, num_chunks=3, node=_slow_gpu_node(2))

    def test_schema(self, tmp_path):
        run = self._run()
        path = write_chrome_trace(
            tmp_path / "trace.json", run.profile,
            memory_timelines=cluster_memory_timelines(run.cluster),
        )
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "M", "C", "i"} <= phs
        for e in doc["traceEvents"]:
            assert "pid" in e and "name" in e
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0 and "tid" in e

    def test_per_rank_stream_tracks(self):
        run = self._run()
        doc = to_chrome_trace(run.profile)
        names = {
            (e["pid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for rank in range(2):
            pid = rank + 1
            assert (pid, "compute") in names
            assert (pid, "h2d-prefetch") in names
            assert (pid, "d2h") in names
        assert (0, "collective") in names  # cluster-wide row

    def test_collectives_on_the_collective_lane(self):
        run = self._run()
        doc = to_chrome_trace(run.profile)
        lane_name = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        colls = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "collective"
        ]
        assert colls
        # The runtime records collectives on the compute stream; the
        # export must still put them on the cluster's collective lane.
        assert {lane_name[(e["pid"], e["tid"])] for e in colls} == {"collective"}
        assert {e["pid"] for e in colls} == {0}

    def test_memory_counter_track(self):
        run = self._run()
        doc = to_chrome_trace(
            run.profile, memory_timelines=cluster_memory_timelines(run.cluster)
        )
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "mem:cuda:0" in names and "mem:host" in names
        for e in counters:
            assert e["args"]["bytes_in_use"] >= 0
        # Counter timestamps live on the simulated timeline.
        ts = [e["ts"] for e in counters]
        assert max(ts) <= run.profile.makespan * 1e6 + 1e-6

    def test_counters_track_offload_growth(self):
        run = self._run()
        doc = to_chrome_trace(
            run.profile, memory_timelines=cluster_memory_timelines(run.cluster)
        )
        host = [e for e in doc["traceEvents"]
                if e["ph"] == "C" and e["name"] == "mem:host"]
        assert max(e["args"]["bytes_in_use"] for e in host) > 0


class TestStoreOrdering:
    """Satellite regression: ChunkCache.store allocates the host buffer
    *before* freeing the device tensor, so both copies coexist at the
    offload instant (the transfer-overlap peak)."""

    def test_host_and_device_bytes_coexist_at_offload(self):
        cluster = VirtualCluster(1, record_timeline=True)
        cache = ChunkCache(cluster)
        dev = cluster.devices[0]
        t = dev.from_numpy(np.ones((8, 8), np.float32), DType.BF16, "chunk")
        nbytes = t.nbytes
        cache.store("k0", t, dev)
        host_alloc = next(
            s for s in cluster.host.pool.timeline if s.event == "alloc:cache:k0"
        )
        dev_free = next(
            s for s in dev.hbm.timeline if s.event == "free:chunk"
        )
        # Shared step clock: host alloc strictly precedes the device free.
        assert host_alloc.step < dev_free.step
        # At the host-alloc instant the device copy is still resident.
        dev_before = [s for s in dev.hbm.timeline if s.step < host_alloc.step]
        assert dev_before and dev_before[-1].in_use == nbytes
        assert host_alloc.in_use == nbytes

    def test_samples_stamped_with_trace_position(self):
        cluster = VirtualCluster(1, record_timeline=True)
        cache = ChunkCache(cluster)
        dev = cluster.devices[0]
        t = dev.from_numpy(np.ones(4, np.float32), DType.BF16, "chunk")
        cache.store("k0", t, dev)
        (d2h,) = cluster.trace.filter(kind="d2h")
        host_alloc = next(
            s for s in cluster.host.pool.timeline if s.event == "alloc:cache:k0"
        )
        dev_free = next(s for s in dev.hbm.timeline if s.event == "free:chunk")
        # Alloc happened before the d2h trace event, free after it.
        assert host_alloc.event_index == d2h.event_id
        assert dev_free.event_index == d2h.event_id + 1


class TestIntegration:
    def test_profile_cluster_uses_cluster_spec(self):
        spec = ClusterSpec(paper_node_a100_80g(2), 1)
        cluster = VirtualCluster(2, spec=spec)
        cluster.devices[0].compute("gemm", flops=1e12)
        profile = profile_cluster(cluster)
        assert profile.peak_flops == spec.node.gpu.peak_flops_bf16
        assert profile.makespan > 0

    def test_report_data_shape(self):
        run = run_profiled_step(world=2, num_chunks=3)
        data = run.profile.report_data()
        assert set(data) == {"makespan", "world", "overall", "phases"}
        assert data["world"] == 2
        assert {p["phase"] for p in data["phases"]} == {"forward", "backward"}
        for row in [data["overall"]] + data["phases"]:
            assert 0 <= row["overlap_efficiency"] <= 1
            assert row["exposed_h2d"] <= row["exposed_comm"] + 1e-12

    def test_trainer_profile_option(self):
        from repro.core.fpdt_model import FPDTModelRunner
        from repro.models import GPTModel, tiny_llama
        from repro.training.data import SyntheticCorpus
        from repro.training.trainer import Trainer

        cfg = tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2)
        model = GPTModel(cfg)
        cluster = VirtualCluster(2)
        runner = FPDTModelRunner(model, cluster, num_chunks=2)
        trainer = Trainer(model, SyntheticCorpus(vocab_size=cfg.vocab_size, seed=0),
                          runner=runner)
        result = trainer.train(1, batch_size=1, seq_len=16, profile=True)
        assert result.profile is not None
        assert result.profile.rollup().comm_time > 0

    def test_trainer_profile_requires_runner(self):
        from repro.models import GPTModel, tiny_llama
        from repro.training.data import SyntheticCorpus
        from repro.training.trainer import Trainer

        cfg = tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2)
        trainer = Trainer(
            GPTModel(cfg), SyntheticCorpus(vocab_size=cfg.vocab_size, seed=0)
        )
        with pytest.raises(ValueError):
            trainer.train(1, batch_size=1, seq_len=16, profile=True)

    def test_experiment_profile_flags(self):
        from repro.experiments import figure13

        result = figure13.run(profile=True, world=2, num_chunks=2)
        prof = result.data["profile"]
        assert prof["overall"]["comm_time"] > 0
        assert {p["phase"] for p in prof["phases"]} >= {"forward", "backward"}

    def test_report_renders_profile_section(self):
        from repro.experiments import figure13
        from repro.experiments.report import render

        result = figure13.run(profile=True, world=2, num_chunks=2)
        text = render(result)
        assert "simulated-time profile" in text
        assert "overlap" in text and "MFU" in text
