"""Model-level Ring Attention runner (via the shared contiguous-shard
frame) and four-way cross-runner agreement."""

import numpy as np
import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.parallel import (
    MegatronModelRunner,
    RingModelRunner,
    UlyssesModelRunner,
)
from repro.runtime import VirtualCluster

from .helpers import rng

WORLD = 4


def _data(cfg, seed=0, b=1, s=32):
    g = rng(seed)
    return (
        g.integers(0, cfg.vocab_size, size=(b, s)),
        g.integers(0, cfg.vocab_size, size=(b, s)),
    )


@pytest.mark.parametrize(
    "cfg_factory",
    [
        pytest.param(lambda: tiny_gpt(hidden_size=32, num_heads=4, num_layers=2), id="gpt"),
        pytest.param(
            lambda: tiny_llama(hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2),
            id="llama",
        ),
    ],
)
class TestRingModelEquivalence:
    def test_loss_and_grads_match_reference(self, cfg_factory):
        cfg = cfg_factory()
        tokens, labels = _data(cfg)
        ref = GPTModel(cfg, seed=0)
        ref_loss = ref.forward_loss(tokens, labels)
        ref.backward_loss()
        ref_grads = ref.all_grads()

        model = GPTModel(cfg, seed=0)
        runner = RingModelRunner(model, VirtualCluster(WORLD))
        loss, grads = runner.forward_backward(tokens, labels)
        assert loss == pytest.approx(ref_loss, rel=1e-10)
        for name in ref_grads:
            np.testing.assert_allclose(
                grads[name], ref_grads[name], rtol=1e-6, atol=1e-9, err_msg=name
            )


class TestFourWayAgreement:
    def test_all_four_runners_identical(self):
        """Ulysses, Megatron-SP, Ring and FPDT produce the same loss and
        the same gradients for the same model and batch."""
        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=2)
        tokens, labels = _data(cfg, seed=4)
        results = {}
        for name, make in [
            ("ulysses", lambda m: UlyssesModelRunner(m, VirtualCluster(WORLD))),
            ("megatron", lambda m: MegatronModelRunner(m, VirtualCluster(WORLD))),
            ("ring", lambda m: RingModelRunner(m, VirtualCluster(WORLD))),
            ("fpdt", lambda m: FPDTModelRunner(
                m, VirtualCluster(WORLD), num_chunks=2, loss_chunks=1
            )),
        ]:
            model = GPTModel(cfg, seed=9)
            results[name] = make(model).forward_backward(tokens, labels)
        losses = {k: v[0] for k, v in results.items()}
        assert len({round(l, 12) for l in losses.values()}) == 1, losses
        base_grads = results["ulysses"][1]
        for name, (_, grads) in results.items():
            for key in base_grads:
                np.testing.assert_allclose(
                    grads[key], base_grads[key], rtol=1e-6, atol=1e-8,
                    err_msg=f"{name}:{key}",
                )

    def test_base_class_hooks_are_abstract(self):
        from repro.parallel import ContiguousShardRunner

        cfg = tiny_gpt(hidden_size=32, num_heads=4, num_layers=1)
        runner = ContiguousShardRunner(GPTModel(cfg), VirtualCluster(2))
        tokens, labels = _data(cfg, seed=5, s=16)
        with pytest.raises(NotImplementedError):
            runner.forward_backward(tokens, labels)
