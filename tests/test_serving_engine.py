"""Serving engine: bitwise equivalence with single-request decoding
across prefill chunkings, offload modes, window configs, and injected
faults; KV store residency and accounting."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.faults import FaultInjector, FaultPlan
from repro.models import GPTModel, tiny_gpt, tiny_llama
from repro.models.generate import generate
from repro.runtime import VirtualCluster
from repro.serving import (
    EngineConfig,
    Request,
    RequestKVStore,
    RequestState,
    ServingEngine,
)

from .helpers import rng


def _gpt():
    return GPTModel(
        tiny_gpt(hidden_size=32, num_heads=4, num_layers=2, vocab_size=32),
        seed=0,
    )


def _llama(window=None):
    cfg = tiny_llama(
        hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2, vocab_size=32
    )
    if window is not None:
        cfg = cfg.scaled(attention_window=window)
    return GPTModel(cfg, seed=0)


def _drive(engine, request):
    """Run one request through the engine to completion serially."""
    state = engine.start(request)
    while state.state is RequestState.PREFILL:
        engine.prefill_step(state)
    while state.state is RequestState.DECODE:
        engine.decode_step(state)
    engine.finish(state)
    return state


class TestEngineMatchesGenerate:
    @pytest.mark.parametrize("model_factory", [_gpt, _llama], ids=["gpt", "llama"])
    @pytest.mark.parametrize("chunk", [None, 1, 3], ids=["whole", "c1", "c3"])
    @pytest.mark.parametrize("offload", [True, False], ids=["offload", "inline"])
    def test_bitwise_identical(self, model_factory, chunk, offload):
        """Any prefill chunking, with or without host offload, decodes
        the exact tokens of single-request ``generate()``."""
        model = model_factory()
        engine = ServingEngine(
            model, config=EngineConfig(prefill_chunk=chunk, offload=offload)
        )
        prompt = rng(4).integers(0, 32, size=7)
        request = Request(rid="r0", prompt=prompt, max_new_tokens=5)
        state = _drive(engine, request)
        reference = generate(model, prompt, max_new_tokens=5)
        np.testing.assert_array_equal(state.output(), reference)

    def test_windowed_model_bitwise_identical(self):
        model = _llama(window=4)
        engine = ServingEngine(model, config=EngineConfig(prefill_chunk=2))
        prompt = rng(5).integers(0, 32, size=9)
        request = Request(rid="r0", prompt=prompt, max_new_tokens=8)
        state = _drive(engine, request)
        np.testing.assert_array_equal(
            state.output(), generate(model, prompt, max_new_tokens=8)
        )

    def test_temperature_sampling_matches_by_seed(self):
        """Seeded temperature sampling consumes the identical RNG stream
        in the engine and in ``generate()``."""
        model = _gpt()
        engine = ServingEngine(model, config=EngineConfig(prefill_chunk=3))
        prompt = rng(6).integers(0, 32, size=6)
        request = Request(
            rid="r0", prompt=prompt, max_new_tokens=6, temperature=0.8, seed=11
        )
        state = _drive(engine, request)
        reference = generate(
            model, prompt, max_new_tokens=6, temperature=0.8, seed=11
        )
        np.testing.assert_array_equal(state.output(), reference)

    def test_fault_injected_engine_bitwise_identical(self):
        """Transient KV-transfer faults retry without perturbing data:
        served tokens stay exactly equal to the clean decode."""
        model = _gpt()
        cluster = VirtualCluster(1)
        injector = FaultInjector(FaultPlan(seed=3, offload_rate=0.2)).attach(cluster)
        engine = ServingEngine(
            model, config=EngineConfig(prefill_chunk=2), cluster=cluster
        )
        prompt = rng(7).integers(0, 32, size=8)
        request = Request(rid="r0", prompt=prompt, max_new_tokens=6)
        state = _drive(engine, request)
        assert injector.stats()["total_faults"] > 0
        np.testing.assert_array_equal(
            state.output(), generate(model, prompt, max_new_tokens=6)
        )


class TestEngineLifecycle:
    def test_host_bytes_released_after_finish(self):
        """A completed request leaves no KV residue on the host."""
        model = _gpt()
        cluster = VirtualCluster(1)
        engine = ServingEngine(model, cluster=cluster)
        request = Request(
            rid="r0", prompt=np.array([1, 2, 3]), max_new_tokens=3
        )
        state = engine.start(request)
        engine.prefill_step(state)
        assert engine.store.host_bytes > 0
        while state.state is RequestState.DECODE:
            engine.decode_step(state)
        engine.finish(state)
        assert engine.store.host_bytes == 0
        assert cluster.host.pool.in_use == 0
        assert cluster.devices[0].hbm.in_use == 0

    def test_decode_batch_is_per_request_independent(self):
        """A batched decode step produces exactly the per-request serial
        tokens (continuous batching never mixes request arithmetic)."""
        model = _gpt()
        engine = ServingEngine(model, config=EngineConfig(prefill_chunk=4))
        prompts = [rng(10 + i).integers(0, 32, size=4 + i) for i in range(3)]
        states = []
        for i, prompt in enumerate(prompts):
            state = engine.start(
                Request(rid=f"r{i}", prompt=prompt, max_new_tokens=4)
            )
            while state.state is RequestState.PREFILL:
                engine.prefill_step(state)
            states.append(state)
        while any(s.state is RequestState.DECODE for s in states):
            engine.decode_batch(
                [s for s in states if s.state is RequestState.DECODE]
            )
        for state, prompt in zip(states, prompts):
            engine.finish(state)
            np.testing.assert_array_equal(
                state.output(), generate(model, prompt, max_new_tokens=4)
            )

    def test_prefill_chunk_boundaries(self):
        """Chunk sizes that don't divide the prompt still encode every
        token exactly once."""
        model = _gpt()
        engine = ServingEngine(model, config=EngineConfig(prefill_chunk=3))
        request = Request(
            rid="r0", prompt=rng(12).integers(0, 32, size=7), max_new_tokens=1
        )
        state = engine.start(request)
        steps = 0
        while state.state is RequestState.PREFILL:
            engine.prefill_step(state)
            steps += 1
        assert steps == 3  # 3 + 3 + 1
        assert state.prefill_pos == 7

    def test_state_machine_guards(self):
        model = _gpt()
        engine = ServingEngine(model)
        request = Request(rid="r0", prompt=np.array([1]), max_new_tokens=1)
        state = engine.start(request)
        with pytest.raises(RuntimeError, match="not decoding"):
            engine.decode_step(state)
        engine.prefill_step(state)
        with pytest.raises(RuntimeError, match="not in prefill"):
            engine.prefill_step(state)

    def test_request_validation(self):
        with pytest.raises(ShapeError, match="at least one token"):
            Request(rid="r0", prompt=np.zeros(0, dtype=int), max_new_tokens=1)
        with pytest.raises(ShapeError, match="1-D"):
            Request(rid="r0", prompt=np.zeros((1, 3), dtype=int), max_new_tokens=1)
        with pytest.raises(ValueError):
            Request(rid="r0", prompt=np.array([1]), max_new_tokens=0)
        with pytest.raises(ValueError):
            Request(rid="r0", prompt=np.array([1]), max_new_tokens=1, temperature=-1)


class TestRequestKVStore:
    def test_save_load_round_trip(self):
        cluster = VirtualCluster(1)
        store = RequestKVStore(cluster, num_layers=2)
        from repro.models.generate import KVCache

        kv = KVCache(2)
        for layer in range(2):
            kv.append(layer, rng(layer).normal(size=(1, 3, 2, 4)),
                      rng(layer + 5).normal(size=(1, 3, 2, 4)))
        keys_before = [k.copy() for k in kv.keys]
        store.save("r0", kv)
        assert "r0" in store and len(store) == 1
        assert store.host_bytes > 0
        restored = store.load("r0")
        assert "r0" not in store
        assert store.host_bytes == 0
        for layer in range(2):
            np.testing.assert_array_equal(restored.keys[layer], keys_before[layer])
        assert restored.seq_len == 3 and restored.offset == 0

    def test_double_save_raises(self):
        cluster = VirtualCluster(1)
        store = RequestKVStore(cluster, num_layers=1)
        from repro.models.generate import KVCache

        kv = KVCache(1)
        kv.append(0, np.ones((1, 2, 1, 4)), np.ones((1, 2, 1, 4)))
        store.save("r0", kv)
        with pytest.raises(KeyError, match="already holds"):
            store.save("r0", kv)

    def test_load_and_evict_missing_raise(self):
        cluster = VirtualCluster(1)
        store = RequestKVStore(cluster, num_layers=1)
        with pytest.raises(KeyError, match="no request"):
            store.load("ghost")
        with pytest.raises(KeyError, match="no request"):
            store.evict("ghost")

    def test_load_after_evict_raises(self):
        cluster = VirtualCluster(1)
        store = RequestKVStore(cluster, num_layers=1)
        from repro.models.generate import KVCache

        kv = KVCache(1)
        kv.append(0, np.ones((1, 2, 1, 4)), np.ones((1, 2, 1, 4)))
        store.save("r0", kv)
        store.evict("r0")
        assert store.host_bytes == 0
        with pytest.raises(KeyError, match="no request"):
            store.load("r0")
