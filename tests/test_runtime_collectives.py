"""Tests for the NCCL-style collectives, including the Ulysses layout
identities that FPDT's correctness rests on."""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.common.errors import ShapeError
from repro.runtime import VirtualCluster, fast_path
from repro.runtime.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    broadcast,
    hierarchical_all_to_all,
    reduce_scatter,
    ring_shift,
)


def _rank_tensors(cluster, arrays, tag="in"):
    return [
        dev.from_numpy(a, DType.FP32, tag) for dev, a in zip(cluster.devices, arrays)
    ]


class TestAllToAll:
    def test_ulysses_head_scatter_seq_gather(self):
        """[b, s_local, h, d] -> [b, s_global, h_local, d] with the exact
        permutation Fig. 2 draws: rank r ends with head group r for the
        full (rank-ordered) sequence."""
        P, b, s_local, h, d = 4, 1, 2, 8, 3
        full = np.random.default_rng(0).normal(size=(b, P * s_local, h, d))
        cluster = VirtualCluster(P)
        shards = cluster.scatter(full, axis=1, dtype=DType.FP32, tag="x")
        outs = all_to_all(cluster, shards, split_axis=2, concat_axis=1)
        h_local = h // P
        for r, out in enumerate(outs):
            assert out.shape == (b, P * s_local, h_local, d)
            expected = full[:, :, r * h_local : (r + 1) * h_local, :]
            np.testing.assert_array_equal(out.data, expected)
        for out in outs:
            out.free()
        cluster.check_no_leaks()

    def test_inverse_all_to_all_restores_layout(self):
        P, b, s_local, h, d = 4, 2, 2, 4, 5
        full = np.random.default_rng(1).normal(size=(b, P * s_local, h, d))
        cluster = VirtualCluster(P)
        shards = cluster.scatter(full, axis=1, dtype=DType.FP32, tag="x")
        gathered = all_to_all(cluster, shards, split_axis=2, concat_axis=1)
        restored = all_to_all(cluster, gathered, split_axis=1, concat_axis=2)
        out = cluster.gather(restored, axis=1, free=True)
        np.testing.assert_array_equal(out, full)

    def test_not_inplace_allocates_recv_buffer(self):
        """Table 2's point: all2all needs a receive buffer while the send
        buffer is still live, so peak >= send + recv."""
        P = 2
        cluster = VirtualCluster(P)
        x = np.zeros((1, 4, 4, 2), np.float32)
        shards = _rank_tensors(cluster, [x, x])
        per_rank = shards[0].nbytes
        all_to_all(cluster, shards, split_axis=2, concat_axis=1)
        assert cluster.devices[0].hbm.peak >= 2 * per_rank

    def test_indivisible_split_axis_raises(self):
        cluster = VirtualCluster(4)
        shards = _rank_tensors(cluster, [np.zeros((1, 2, 6, 2), np.float32)] * 4)
        with pytest.raises(ShapeError):
            all_to_all(cluster, shards, split_axis=2, concat_axis=1)

    def test_mismatched_shapes_raise(self):
        cluster = VirtualCluster(2)
        shards = _rank_tensors(cluster, [np.zeros((2, 2)), np.zeros((2, 3))])
        with pytest.raises(ShapeError):
            all_to_all(cluster, shards, split_axis=0, concat_axis=1)

    def test_wrong_world_size_raises(self):
        cluster = VirtualCluster(2)
        t = cluster.devices[0].from_numpy(np.zeros((2, 2)), DType.FP32, "x")
        with pytest.raises(ShapeError):
            all_to_all(cluster, [t], split_axis=0, concat_axis=1)
        t.free()

    def test_trace_records_wire_bytes(self):
        cluster = VirtualCluster(4)
        shards = _rank_tensors(cluster, [np.zeros((4, 4), np.float32)] * 4)
        per_rank = shards[0].nbytes
        all_to_all(cluster, shards, split_axis=0, concat_axis=1)
        events = cluster.trace.filter(kind="collective", label_prefix="all_to_all")
        assert len(events) == 1
        assert events[0].nbytes == per_rank * 3 // 4

    def test_wire_bytes_rounds_up(self):
        """Odd shard sizes must round the (world-1)/world wire fraction
        *up* — flooring undercounts a byte per event, which compounds
        across thousands of traced collectives."""
        from repro.runtime.collectives import _wire_bytes

        assert _wire_bytes(20, 3) == 14  # ceil(20 * 2/3) = 14, not 13
        assert _wire_bytes(64, 4) == 48  # exact division unchanged
        assert _wire_bytes(1, 2) == 1
        assert _wire_bytes(0, 4) == 0
        assert _wire_bytes(7, 1) == 0  # single rank moves nothing


class TestAllGatherReduceScatter:
    def test_all_gather_replicates_concatenation(self):
        cluster = VirtualCluster(3)
        arrays = [np.full((2, 2), float(r)) for r in range(3)]
        outs = all_gather(cluster, _rank_tensors(cluster, arrays), axis=0)
        expected = np.concatenate(arrays, axis=0)
        for out in outs:
            np.testing.assert_array_equal(out.data, expected)

    def test_reduce_scatter_sums_and_shards(self):
        cluster = VirtualCluster(2)
        a = np.arange(8.0).reshape(4, 2)
        b = np.ones((4, 2))
        outs = reduce_scatter(cluster, _rank_tensors(cluster, [a, b]), axis=0)
        total = a + b
        np.testing.assert_array_equal(outs[0].data, total[:2])
        np.testing.assert_array_equal(outs[1].data, total[2:])

    def test_reduce_scatter_inverse_of_all_gather(self):
        cluster = VirtualCluster(4)
        rng = np.random.default_rng(2)
        arrays = [rng.normal(size=(8, 2)) for _ in range(4)]
        gathered = all_gather(cluster, _rank_tensors(cluster, arrays), axis=0)
        shards = reduce_scatter(cluster, gathered, axis=0)
        # reduce_scatter(all_gather(x)) = P * x_shard at each position.
        full = np.concatenate(arrays, axis=0)
        for r, s in enumerate(shards):
            np.testing.assert_allclose(s.data, 4 * full[r * 8 : (r + 1) * 8])

    def test_reduce_scatter_indivisible_raises(self):
        cluster = VirtualCluster(2)
        shards = _rank_tensors(cluster, [np.zeros((3, 2))] * 2)
        with pytest.raises(ShapeError):
            reduce_scatter(cluster, shards, axis=0)


class TestAllReduceBroadcastRing:
    def test_all_reduce_sums_everywhere(self):
        cluster = VirtualCluster(3)
        arrays = [np.full((2,), float(r + 1)) for r in range(3)]
        outs = all_reduce(cluster, _rank_tensors(cluster, arrays))
        for out in outs:
            np.testing.assert_array_equal(out.data, np.full((2,), 6.0))

    def test_broadcast_from_root(self):
        cluster = VirtualCluster(3)
        t = cluster.devices[1].from_numpy(np.arange(4.0), DType.FP32, "w")
        outs = broadcast(cluster, t, root=1)
        for out in outs:
            np.testing.assert_array_equal(out.data, np.arange(4.0))
        assert outs[1] is t

    def test_ring_shift_rotates_by_one(self):
        cluster = VirtualCluster(4)
        arrays = [np.full((2,), float(r)) for r in range(4)]
        outs = ring_shift(cluster, _rank_tensors(cluster, arrays), shift=1)
        # rank r now holds rank (r-1)'s data
        for r, out in enumerate(outs):
            np.testing.assert_array_equal(out.data, np.full((2,), float((r - 1) % 4)))

    def test_ring_shift_full_cycle_is_identity(self):
        cluster = VirtualCluster(3)
        arrays = [np.array([float(r)]) for r in range(3)]
        tensors = _rank_tensors(cluster, arrays)
        for _ in range(3):
            tensors = ring_shift(cluster, tensors, shift=1)
        for r, t in enumerate(tensors):
            np.testing.assert_array_equal(t.data, np.array([float(r)]))


class TestArenaFastPath:
    """The zero-copy fast path must be invisible except in allocator
    traffic: bitwise-identical payloads, identical trace bytes."""

    def _arrays(self, world):
        g = np.random.default_rng(11)
        return [g.normal(size=(2, 4, world * 2, 4)) for _ in range(world)]

    def _run(self, op, world, enabled):
        with fast_path(enabled):
            cluster = VirtualCluster(world)
            outs = op(cluster, _rank_tensors(cluster, self._arrays(world)))
            data = [o.data.copy() for o in outs]
            events = [
                (e.label, e.nbytes)
                for e in cluster.trace.filter(kind="collective")
            ]
        return data, events

    @pytest.mark.parametrize(
        "op",
        [
            lambda c, t: all_to_all(c, t, split_axis=2, concat_axis=1),
            lambda c, t: all_gather(c, t, axis=1),
            lambda c, t: reduce_scatter(c, t, axis=2),
            lambda c, t: all_reduce(c, t),
            lambda c, t: ring_shift(c, t, shift=1),
            lambda c, t: hierarchical_all_to_all(
                c, t, split_axis=2, concat_axis=1, gpus_per_node=2
            ),
        ],
        ids=[
            "all_to_all", "all_gather", "reduce_scatter", "all_reduce",
            "ring_shift", "hierarchical_all_to_all",
        ],
    )
    def test_bitwise_identical_fast_path_on_or_off(self, op):
        on_data, on_events = self._run(op, 4, True)
        off_data, off_events = self._run(op, 4, False)
        for a, b in zip(on_data, off_data):
            np.testing.assert_array_equal(a, b)
        assert on_events == off_events

    def test_collective_consumes_inputs(self):
        """``free_input=True`` (the default) releases the send buffers:
        their storage returns to the arena and use-after-release is loud."""
        cluster = VirtualCluster(2)
        tensors = _rank_tensors(cluster, self._arrays(2))
        outs = all_to_all(cluster, tensors, split_axis=2, concat_axis=1)
        assert all(t.data is None for t in tensors)
        for o in outs:
            o.free()
        cluster.check_no_leaks()
