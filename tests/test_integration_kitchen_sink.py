"""Kitchen-sink integration: every feature at once.

Sliding-window Llama with GQA, packed-document data with loss masking,
FPDT with offloading + activation checkpointing, mixed precision with
loss scaling, cosine LR with clipping, checkpoint save/resume, and
KV-cached generation at the end — the configuration a real user of the
whole library would run, exercised as one coherent workflow.
"""

import numpy as np
import pytest

from repro.core import FPDTModelRunner
from repro.models import GPTModel, tiny_llama
from repro.models.generate import generate
from repro.runtime import VirtualCluster
from repro.training import (
    Adam,
    load_checkpoint,
    save_checkpoint,
)
from repro.training.data import PackedDocumentCorpus, make_packed_batch
from repro.training.mixed_precision import MixedPrecisionTrainer
from repro.training.optimizer import Adam as AdamOpt
from repro.training.schedule import clip_grad_norm, warmup_cosine_lr

WORLD = 4
VOCAB = 32


def _cfg():
    return tiny_llama(
        hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2, vocab_size=VOCAB
    ).scaled(attention_window=24)


class TestKitchenSink:
    def test_full_workflow(self, tmp_path):
        cfg = _cfg()
        model = GPTModel(cfg, seed=3)
        corpus = PackedDocumentCorpus(VOCAB, doc_len_low=4, doc_len_high=10, seed=3)
        runner = FPDTModelRunner(
            model, VirtualCluster(WORLD), num_chunks=2,
            offload=True, activation_checkpoint=True, loss_chunks=2,
        )
        optimizer = Adam(model.all_params(), lr=5e-3)
        losses = []
        for step in range(12):
            tokens, labels = make_packed_batch(corpus, 2, 16)
            loss, grads = runner.forward_backward(tokens, labels)
            grads, _ = clip_grad_norm(grads, 5.0)
            optimizer.lr = warmup_cosine_lr(
                step, base_lr=5e-3, warmup_steps=2, total_steps=12
            )
            new_params = optimizer.step(model.all_params(), grads)
            for name, val in new_params.items():
                model.set_param(name, val)
            losses.append(loss)
        assert all(np.isfinite(losses))

        # Persist and resume into a fresh model: parameters identical.
        path = tmp_path / "sink.npz"
        save_checkpoint(path, model, optimizer=optimizer, step=12)
        restored = GPTModel(cfg, seed=99)
        opt2 = AdamOpt(restored.all_params(), lr=5e-3)
        assert load_checkpoint(path, restored, optimizer=opt2) == 12
        for name, val in model.all_params().items():
            np.testing.assert_array_equal(restored.all_params()[name], val)

        # The restored model decodes with the KV cache (windowed attention).
        prompt = corpus.sample_packed(8)[:8]
        out = generate(restored, prompt, max_new_tokens=4)
        assert out.shape == (12,)
        assert ((out >= 0) & (out < VOCAB)).all()

    def test_mixed_precision_with_packed_window_fpdt(self):
        """bf16-emulated FPDT training on packed windowed-attention data
        matches the bf16 single-device baseline step for step."""
        curves = {}
        for mode in ("baseline", "fpdt"):
            cfg = _cfg()
            model = GPTModel(cfg, seed=5)
            runner = None
            if mode == "fpdt":
                runner = FPDTModelRunner(
                    model, VirtualCluster(WORLD), num_chunks=2, loss_chunks=2
                )
            corpus = PackedDocumentCorpus(VOCAB, doc_len_low=4, doc_len_high=10, seed=5)
            trainer = MixedPrecisionTrainer(
                model, corpus, runner=runner, lr=5e-3,
                batch_fn=lambda bs, sl: make_packed_batch(corpus, bs, sl),
            )
            curves[mode] = trainer.train(6, batch_size=1, seq_len=16).losses
        np.testing.assert_allclose(curves["fpdt"], curves["baseline"], rtol=1e-8)
